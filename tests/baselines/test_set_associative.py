"""Unit tests for the set-associative baseline."""

import pytest

from repro.baselines.set_associative import SetAssociativeCache
from repro.errors import ObjectTooLargeError
from repro.flash.geometry import FlashGeometry


def make_cache(op_ratio=0.5):
    geo = FlashGeometry(
        page_size=4096, pages_per_block=8, num_blocks=8, blocks_per_zone=1
    )
    return SetAssociativeCache(geo, op_ratio=op_ratio)


class TestBasics:
    def test_insert_lookup(self):
        cache = make_cache()
        cache.insert(1, 200)
        r = cache.lookup(1, 200)
        assert r.hit and r.source == "flash" and r.flash_reads == 1

    def test_miss_costs_no_flash_read(self):
        """The per-set bloom filter screens misses (4 bits/obj)."""
        cache = make_cache()
        cache.insert(1, 200)
        reads_before = cache.stats.host_read_ops
        assert not cache.lookup(999_999, 200).hit
        assert cache.stats.host_read_ops == reads_before

    def test_update_single_copy(self):
        cache = make_cache()
        cache.insert(1, 100)
        cache.insert(1, 300)
        assert cache.object_count() == 1

    def test_delete_is_metadata_only(self):
        cache = make_cache()
        cache.insert(1, 100)
        writes = cache.stats.host_write_ops
        assert cache.delete(1)
        assert cache.stats.host_write_ops == writes
        assert not cache.lookup(1, 100).hit

    def test_oversized_rejected(self):
        cache = make_cache()
        with pytest.raises(ObjectTooLargeError):
            cache.insert(1, 4097)

    def test_op_halves_usable_sets(self):
        assert make_cache(0.5).num_sets == make_cache(0.25).num_sets * 2 // 3


class TestWAProperties:
    def test_rmw_wa_matches_page_over_object(self):
        """Tiny-object RMW: ALWA ≈ page/object (paper: ~16 at 246 B)."""
        cache = make_cache()
        for key in range(5000):
            cache.insert(key, 250)
        assert cache.stats.alwa == pytest.approx(4096 / 250, rel=0.1)

    def test_set_overflow_evicts_fifo(self):
        cache = make_cache()
        # Force one specific set to overflow by brute force.
        sid = cache._set_of(0)
        same_set = [k for k in range(100_000) if cache._set_of(k) == sid][:30]
        for key in same_set:
            cache.insert(key, 400)
        assert cache.counters.evicted_objects > 0
        assert cache.lookup(same_set[-1], 400).hit
        assert not cache.lookup(same_set[0], 400).hit

    def test_memory_overhead(self):
        assert make_cache().memory_overhead_bits_per_object() == 4.0

    def test_total_wa_includes_device_gc(self):
        cache = make_cache(op_ratio=0.3)
        for round_ in range(3):
            for key in range(6000):
                cache.insert(key, 300)
        assert cache.write_amplification >= cache.stats.alwa
