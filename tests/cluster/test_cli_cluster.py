"""CLI tests: ``repro cluster`` and the ``repro replay`` shard guard."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestClusterCLI:
    def test_sweep_end_to_end(self, capsys):
        rc = main(
            [
                "cluster", "--engine", "log", "--shards", "1", "2",
                "--requests", "6000", "--tenants", "2",
                "--keys-per-tenant", "600", "--quota-mib", "1",
                "--jobs", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "shards" in out and "capacity req/s" in out
        assert "per-tenant isolation at 2 shard(s)" in out
        # Both tenants appear with interference deltas (solo refs ran).
        assert "t1" in out and "t2" in out
        assert "d-miss" in out

    def test_no_solo_skips_interference(self, capsys):
        rc = main(
            [
                "cluster", "--engine", "log", "--shards", "2",
                "--requests", "4000", "--tenants", "2",
                "--keys-per-tenant", "500", "--no-solo", "--jobs", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "nan" in out  # interference columns are empty markers

    def test_rejects_bad_tenant_count(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--tenants", "0"])

    def test_rejects_bad_shard_count(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--shards", "0"])


class TestReplayShardGuard:
    """``--shards`` fails fast when no kernel can replay the shards;
    registered-kernel engines demote to serial with a printed note."""

    def test_unregistered_engine_errors(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "replay", "--engine", "set", "--shards", "2",
                    "--requests", "3000",
                ]
            )
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "has no whole-trace kernel" in err

    def test_registered_engine_demotes_with_warning(self, capsys):
        """Nemo has a whole-trace kernel but no analytic sharding lane:
        --shards runs it serially and says so instead of erroring."""
        rc = main(
            [
                "replay", "--engine", "nemo", "--shards", "2",
                "--jobs", "1", "--requests", "3000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert (
            "warning: Nemo: replaying 2 shards on the serial "
            "whole-trace kernel" in out
        )
        assert "columnar" in out

    def test_serial_fallback_prints_warning(self, capsys):
        """Without --shards, an engine with no registered kernel falls
        back to batched dispatch with a warning, not an error."""
        rc = main(
            [
                "replay", "--engine", "set", "--kernel", "columnar",
                "--requests", "3000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "warning: Set: columnar kernel unavailable" in out
        assert "falling back to batched dispatch" in out

    def test_non_columnar_kernel_errors(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "replay", "--engine", "log", "--shards", "2",
                    "--kernel", "scalar", "--requests", "3000",
                ]
            )
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "requires the columnar kernel" in err

    def test_eligible_combination_still_runs(self, capsys):
        rc = main(
            [
                "replay", "--engine", "log", "--shards", "2",
                "--jobs", "1", "--requests", "20000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "columnar" in out
