"""Cluster replay: determinism, merge exactness, isolation accounting.

The contracts pinned here:

- cluster metrics are a pure function of ``(config, trace)`` — byte
  identical for any ``jobs`` (the 2-job runs exercise the real spawn
  pool, which is why these tests live in a file, not a REPL);
- a 1-shard cluster is *exactly* a serial replay of the same engine on
  the same device (the merge arithmetic adds nothing);
- tenant accounts partition the cluster totals, quotas are enforced,
  and the solo-run interference references match independently
  replayed solo clusters.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cluster import (
    CacheCluster,
    ClusterConfig,
    make_engine,
    shard_geometry,
    tenant_of_array,
)
from repro.errors import ConfigError
from repro.harness.runner import replay
from repro.workloads.multitenant import TenantSpec, multi_tenant_trace
from repro.workloads.trace import Trace


def _assert_finals_identical(fa, fb):
    assert fa.keys() == fb.keys()
    for key in fa:
        va, vb = fa[key], fb[key]
        assert va == vb or (
            isinstance(va, float)
            and isinstance(vb, float)
            and math.isnan(va)
            and math.isnan(vb)
        ), f"{key}: {va!r} != {vb!r}"


def _assert_results_identical(a, b):
    _assert_finals_identical(a.final, b.final)
    assert a.series.keys() == b.series.keys()
    for name in a.series:
        rows_a = a.series[name].as_rows()
        rows_b = b.series[name].as_rows()
        assert len(rows_a) == len(rows_b), name
        for (xa, va), (xb, vb) in zip(rows_a, rows_b):
            assert xa == xb
            assert va == vb or (math.isnan(va) and math.isnan(vb))
    assert a.latency._values == b.latency._values
    assert a.num_requests == b.num_requests
    assert a.sim_seconds == b.sim_seconds
    assert sorted(a.tenants) == sorted(b.tenants)
    for tid in a.tenants:
        assert (
            a.tenants[tid].account.as_dict()
            == b.tenants[tid].account.as_dict()
        )


def _trace(num_requests=8_000, seed=0, quota=None):
    specs = [
        TenantSpec(name="a", zipf_alpha=0.9, num_keys=800, quota_bytes=quota),
        TenantSpec(name="b", zipf_alpha=1.2, num_keys=600, request_share=2.0),
    ]
    return multi_tenant_trace(specs, num_requests=num_requests, seed=seed)


class TestDeterminism:
    def test_jobs_do_not_change_metrics(self):
        """Same seed -> byte-identical merged metrics for any --jobs."""
        trace = _trace()
        config = ClusterConfig(num_shards=4, engine="log")
        serial = CacheCluster(config).replay(
            trace, jobs=1, sample_every=1_000, record_latency=True
        )
        pooled = CacheCluster(config).replay(
            trace, jobs=2, sample_every=1_000, record_latency=True
        )
        _assert_results_identical(serial, pooled)

    def test_repeat_run_identical(self):
        trace = _trace()
        config = ClusterConfig(num_shards=3, engine="fw")
        a = CacheCluster(config).replay(trace, jobs=1)
        b = CacheCluster(config).replay(trace, jobs=1)
        _assert_results_identical(a, b)

    def test_nemo_cluster_replays(self):
        """Nemo needs >= 4 zones per shard; tiny shards still merge."""
        trace = _trace(num_requests=2_000)
        config = ClusterConfig(
            num_shards=8, engine="nemo", zones_per_shard=4
        )
        result = CacheCluster(config).replay(trace, jobs=1)
        assert result.num_requests == 2_000
        assert sum(result.shard_requests) == 2_000


class TestColumnShipping:
    """The parent hashes the key column once; shard workers adopt the
    pre-sliced columns instead of re-running the splitmix pass."""

    def test_one_splitmix_pass_per_replay(self, monkeypatch):
        import repro.workloads.trace as trace_mod

        trace = _trace(num_requests=4_000)
        calls: list[int] = []
        orig = trace_mod.splitmix64_array

        def counting(keys, seed):
            calls.append(len(keys))
            return orig(keys, seed)

        monkeypatch.setattr(trace_mod, "splitmix64_array", counting)
        config = ClusterConfig(num_shards=4, engine="nemo", zones_per_shard=8)
        result = CacheCluster(config).replay(
            trace, jobs=1, kernel="columnar", meter=False
        )
        assert result.num_requests == 4_000
        # One pass, over the whole trace — not one per shard.
        assert calls == [4_000]

    def test_nemo_columnar_cluster_matches_batched(self):
        """Shard workers dispatching to the Nemo whole-trace kernel
        merge byte-identically with the batched shard lane."""
        trace = _trace(num_requests=6_000)
        config = ClusterConfig(num_shards=4, engine="nemo", zones_per_shard=8)
        columnar = CacheCluster(config).replay(
            trace, jobs=1, kernel="columnar", meter=False, record_latency=True
        )
        batched = CacheCluster(config).replay(
            trace, jobs=1, kernel="batched", meter=False, record_latency=True
        )
        _assert_results_identical(columnar, batched)
        for fa, fb in zip(columnar.shard_finals, batched.shard_finals):
            _assert_finals_identical(fa, fb)


class TestOneShardIsSerial:
    def test_final_matches_serial_replay(self):
        """One shard + meter off == plain serial replay, bit for bit."""
        trace = _trace()
        config = ClusterConfig(num_shards=1, engine="log", zones_per_shard=8)
        cluster = CacheCluster(config).replay(
            trace, jobs=1, sample_every=2_000, meter=False
        )
        engine = make_engine("log", shard_geometry(8))
        serial = replay(engine, trace, sample_every=2_000)
        _assert_finals_identical(cluster.final, serial.final)
        for name in cluster.series:
            assert (
                cluster.series[name].as_rows()
                == serial.series[name].as_rows()
            )

    def test_wa_convention_matches_engine(self):
        """The merged 'wa' uses each engine's own reporting convention
        (Set reports total WA, the rest ALWA)."""
        trace = _trace(num_requests=4_000)
        for engine_name in ("log", "set"):
            config = ClusterConfig(num_shards=1, engine=engine_name)
            cluster = CacheCluster(config).replay(
                trace, jobs=1, meter=False
            )
            engine = make_engine(engine_name, shard_geometry(8))
            serial = replay(engine, trace)
            assert cluster.wa == serial.final["wa"]


class TestRoutingInvariants:
    def test_route_trace_partitions_requests(self):
        trace = _trace()
        cluster = CacheCluster(ClusterConfig(num_shards=4))
        shards = cluster.route_trace(trace)
        assert sum(len(idx) for idx in shards) == len(trace)
        merged = np.sort(np.concatenate(shards))
        assert np.array_equal(merged, np.arange(len(trace)))

    def test_shard_requests_match_router(self):
        trace = _trace()
        cluster = CacheCluster(ClusterConfig(num_shards=4))
        result = cluster.replay(trace, jobs=1)
        profile = cluster.router.load_profile(trace.keys)
        assert result.shard_requests == [
            profile[s] for s in cluster.router.shard_ids
        ]


class TestTenantAccounting:
    def test_accounts_partition_totals(self):
        trace = _trace()
        result = CacheCluster(ClusterConfig(num_shards=4)).replay(
            trace, jobs=1
        )
        assert sorted(result.tenants) == [1, 2]
        assert sum(
            r.account.lookups for r in result.tenants.values()
        ) == int(result.final["lookups"])
        assert sum(
            r.account.hits for r in result.tenants.values()
        ) == int(result.final["hits"])
        assert sum(
            r.account.inserts for r in result.tenants.values()
        ) == int(result.final["inserts"])
        assert sum(
            r.account.insert_bytes for r in result.tenants.values()
        ) == int(result.final["logical_write_bytes"])

    def test_attribution_partitions_flash_writes(self):
        trace = _trace()
        result = CacheCluster(ClusterConfig(num_shards=3)).replay(
            trace, jobs=1
        )
        assert sum(
            r.attributed_flash_write_bytes for r in result.tenants.values()
        ) == pytest.approx(result.final["flash_write_bytes"])
        assert sum(
            r.attributed_host_write_bytes for r in result.tenants.values()
        ) == pytest.approx(result.final["host_write_bytes"])

    def test_quota_enforced(self):
        quota = 64 * 1024
        trace = _trace(quota=quota)
        config = ClusterConfig(
            num_shards=4, engine="log", quotas={1: quota}
        )
        result = CacheCluster(config).replay(trace, jobs=1)
        limited = result.tenants[1]
        unlimited = result.tenants[2]
        assert limited.account.rejected_inserts > 0
        # Each shard grants ceil(quota / num_shards); the cluster-wide
        # admitted total cannot exceed the sum of the shard grants.
        assert limited.account.insert_bytes <= -(-quota // 4) * 4
        assert unlimited.account.rejected_inserts == 0

    def test_meter_off_with_quotas_rejected(self):
        config = ClusterConfig(num_shards=2, quotas={1: 1 << 20})
        with pytest.raises(ConfigError):
            CacheCluster(config).replay(_trace(), jobs=1, meter=False)


class TestIsolation:
    def test_single_tenant_interference_is_zero(self):
        """With one tenant, shared == solo: deltas are exactly 0.0."""
        specs = [TenantSpec(name="only", zipf_alpha=1.0, num_keys=500)]
        trace = multi_tenant_trace(specs, num_requests=4_000)
        config = ClusterConfig(num_shards=2, engine="log")
        result = CacheCluster(config).replay_with_isolation(trace, jobs=1)
        roll = result.tenants[1]
        assert roll.interference is not None
        assert roll.interference.delta_miss_ratio == 0.0
        assert roll.interference.delta_write_amplification == 0.0

    def test_solo_reference_matches_fresh_solo_run(self):
        """The solo reference is a real replay of the tenant's requests
        on a fresh identical cluster — reproducible independently."""
        trace = _trace(num_requests=6_000)
        config = ClusterConfig(num_shards=2, engine="log")
        result = CacheCluster(config).replay_with_isolation(trace, jobs=1)
        for tid, roll in result.tenants.items():
            mask = tenant_of_array(trace.keys) == tid
            solo_trace = Trace(
                ops=trace.ops[mask],
                keys=trace.keys[mask],
                sizes=trace.sizes[mask],
                name=f"solo-check/{tid}",
            )
            solo = CacheCluster(config).replay(solo_trace, jobs=1)
            assert roll.interference is not None
            assert (
                roll.interference.solo_miss_ratio
                == solo.tenants[tid].miss_ratio
            )
            expected_delta = (
                roll.miss_ratio - roll.interference.solo_miss_ratio
            )
            assert roll.interference.delta_miss_ratio == expected_delta

    def test_interference_nonnegative_for_contended_cache(self):
        """Sharing a small cache cannot *improve* a tenant's miss ratio
        (disjoint key spaces: the co-tenant only evicts, never
        prefetches)."""
        trace = _trace(num_requests=10_000)
        config = ClusterConfig(
            num_shards=2, engine="log", zones_per_shard=2
        )
        result = CacheCluster(config).replay_with_isolation(trace, jobs=1)
        for roll in result.tenants.values():
            assert roll.interference is not None
            assert roll.interference.delta_miss_ratio >= -1e-12


class TestConfigValidation:
    def test_bad_shard_count(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_shards=0)

    def test_unknown_engine(self):
        with pytest.raises(ConfigError):
            ClusterConfig(engine="bogus")

    def test_summary_mentions_shards(self):
        trace = _trace(num_requests=2_000)
        result = CacheCluster(ClusterConfig(num_shards=2)).replay(
            trace, jobs=1
        )
        assert "x2" in result.summary()
        assert result.capacity_requests_per_sec > 0
