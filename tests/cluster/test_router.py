"""Unit + property tests for the consistent-hash router."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.router import ConsistentHashRouter
from repro.errors import ConfigError


def _keys(n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**62, size=n, dtype=np.int64)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            ConsistentHashRouter([])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigError):
            ConsistentHashRouter([0, 1, 1])

    def test_rejects_negative_ids(self):
        with pytest.raises(ConfigError):
            ConsistentHashRouter([-1, 0])

    def test_rejects_bad_vnodes(self):
        with pytest.raises(ConfigError):
            ConsistentHashRouter([0, 1], vnodes=0)

    def test_shard_ids_sorted(self):
        router = ConsistentHashRouter([3, 0, 2])
        assert router.shard_ids == (0, 2, 3)
        assert router.num_shards == 3


class TestRouting:
    def test_scalar_matches_array(self):
        router = ConsistentHashRouter(range(4), seed=7)
        keys = _keys(500)
        owners = router.route_array(keys)
        assert [router.route(int(k)) for k in keys] == list(owners)

    def test_all_owners_valid(self):
        router = ConsistentHashRouter(range(5), seed=3)
        owners = router.route_array(_keys())
        assert set(np.unique(owners)) <= set(router.shard_ids)

    def test_load_profile_counts(self):
        router = ConsistentHashRouter(range(4))
        keys = _keys(8_000)
        profile = router.load_profile(keys)
        assert sum(profile.values()) == len(keys)
        assert sorted(profile) == list(router.shard_ids)


class TestProperties:
    """Hypothesis properties: the router's three contracts."""

    @given(seed=st.integers(0, 2**32 - 1), num_shards=st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_placement_stable_under_fixed_seed(self, seed, num_shards):
        """Same (shard set, seed, vnodes) -> identical placement."""
        keys = _keys(2_000, seed=1)
        a = ConsistentHashRouter(range(num_shards), seed=seed)
        b = ConsistentHashRouter(range(num_shards), seed=seed)
        assert np.array_equal(a.route_array(keys), b.route_array(keys))

    @given(seed=st.integers(0, 2**32 - 1), num_shards=st.integers(2, 8))
    @settings(max_examples=15, deadline=None)
    def test_balanced_within_tolerance(self, seed, num_shards):
        """No shard holds more than twice its fair share of random keys.

        128 vnodes/shard bounds the relative spread well under 2x; the
        loose factor keeps the property stable across arbitrary seeds.
        """
        keys = _keys(num_shards * 4_000, seed=2)
        router = ConsistentHashRouter(range(num_shards), seed=seed)
        profile = router.load_profile(keys)
        fair = len(keys) / num_shards
        assert max(profile.values()) < 2.0 * fair
        assert min(profile.values()) > 0

    @given(
        seed=st.integers(0, 2**32 - 1),
        num_shards=st.integers(2, 8),
        removed_index=st.integers(0, 7),
    )
    @settings(max_examples=15, deadline=None)
    def test_removal_remaps_only_removed_shards_keys(
        self, seed, num_shards, removed_index
    ):
        """Dropping one shard moves only the keys that shard owned."""
        removed = removed_index % num_shards
        keys = _keys(5_000, seed=3)
        router = ConsistentHashRouter(range(num_shards), seed=seed)
        shrunk = router.without(removed)
        assert shrunk.shard_ids == tuple(
            s for s in router.shard_ids if s != removed
        )
        before = router.route_array(keys)
        after = shrunk.route_array(keys)
        surviving = before != removed
        assert np.array_equal(before[surviving], after[surviving])
        assert not np.any(after == removed)

    def test_without_unknown_shard(self):
        with pytest.raises(ConfigError):
            ConsistentHashRouter(range(3)).without(9)
