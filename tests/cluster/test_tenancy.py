"""Tenant namespacing, metering, quotas, and rollup arithmetic."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cluster.factory import make_engine, shard_geometry
from repro.cluster.tenancy import (
    MAX_TENANT_ID,
    TENANT_KEY_BITS,
    TenantAccount,
    TenantMeterEngine,
    local_key,
    namespace_keys,
    rollup_tenants,
    tenant_of,
    tenant_of_array,
)
from repro.errors import ConfigError


class TestNamespacing:
    def test_roundtrip(self):
        keys = np.arange(100, dtype=np.int64)
        spaced = namespace_keys(keys, 7)
        assert list(tenant_of_array(spaced)) == [7] * 100
        assert [local_key(int(k)) for k in spaced] == list(range(100))
        assert tenant_of(int(spaced[3])) == 7

    def test_distinct_tenants_never_collide(self):
        keys = np.arange(50, dtype=np.int64)
        a = namespace_keys(keys, 1)
        b = namespace_keys(keys, 2)
        assert not set(map(int, a)) & set(map(int, b))

    def test_tenant_zero_is_plain_keyspace(self):
        keys = np.asarray([5, 6], dtype=np.int64)
        assert list(namespace_keys(keys, 0)) == [5, 6]

    def test_rejects_out_of_range_tenant(self):
        keys = np.asarray([1], dtype=np.int64)
        with pytest.raises(ConfigError):
            namespace_keys(keys, MAX_TENANT_ID + 1)
        with pytest.raises(ConfigError):
            namespace_keys(keys, -1)

    def test_rejects_local_key_overflow(self):
        keys = np.asarray([1 << TENANT_KEY_BITS], dtype=np.int64)
        with pytest.raises(ConfigError):
            namespace_keys(keys, 1)


class TestTenantAccount:
    def test_miss_ratio(self):
        acct = TenantAccount(lookups=10, hits=7)
        assert acct.miss_ratio == pytest.approx(0.3)
        assert math.isnan(TenantAccount().miss_ratio)

    def test_merge_adds_counters(self):
        a = TenantAccount(lookups=2, hits=1, inserts=3, insert_bytes=300)
        b = TenantAccount(lookups=5, hits=4, rejected_inserts=2)
        a.merge(b)
        assert a.lookups == 7 and a.hits == 5
        assert a.inserts == 3 and a.rejected_inserts == 2

    def test_as_dict_roundtrips_fields(self):
        acct = TenantAccount(lookups=1, rejected_bytes=9)
        d = acct.as_dict()
        assert d["lookups"] == 1 and d["rejected_bytes"] == 9


class TestMeterEngine:
    def _metered(self, quotas=None):
        inner = make_engine("log", shard_geometry(4))
        return TenantMeterEngine(inner, quotas=quotas), inner

    def test_shares_inner_accounting(self):
        meter, inner = self._metered()
        key = int(namespace_keys(np.asarray([3], dtype=np.int64), 1)[0])
        meter.insert(key, 100)
        assert inner.stats.logical_write_bytes == 100
        mine, theirs = meter.metrics_snapshot(), inner.metrics_snapshot()
        assert mine.keys() == theirs.keys()
        for name in mine:
            a, b = mine[name], theirs[name]
            assert a == b or (math.isnan(a) and math.isnan(b)), name

    def test_accounts_by_tenant(self):
        meter, _ = self._metered()
        k1 = int(namespace_keys(np.asarray([3], dtype=np.int64), 1)[0])
        k2 = int(namespace_keys(np.asarray([3], dtype=np.int64), 2)[0])
        meter.insert(k1, 100)
        meter.insert(k2, 80)
        meter.lookup(k1, 100)
        accounts = meter.tenant_accounts()
        assert accounts[1].inserts == 1 and accounts[1].insert_bytes == 100
        assert accounts[2].inserts == 1 and accounts[2].insert_bytes == 80
        assert accounts[1].lookups == 1 and accounts[1].hits == 1

    def test_quota_rejects_over_budget(self):
        meter, inner = self._metered(quotas={1: 150})
        keys = namespace_keys(np.arange(3, dtype=np.int64), 1)
        meter.insert(int(keys[0]), 100)
        meter.insert(int(keys[1]), 100)  # over budget: rejected
        meter.insert(int(keys[2]), 50)  # fits the remainder
        acct = meter.tenant_accounts()[1]
        assert acct.inserts == 2 and acct.insert_bytes == 150
        assert acct.rejected_inserts == 1 and acct.rejected_bytes == 100
        assert inner.object_count() == 2

    def test_negative_quota_rejected(self):
        with pytest.raises(ConfigError):
            self._metered(quotas={1: -1})


class TestRollup:
    def test_proportional_attribution(self):
        """Two shards, two tenants: flash bytes attribute by each
        tenant's admitted-byte share per shard, then sum."""
        shard0 = {
            1: TenantAccount(inserts=1, insert_bytes=300),
            2: TenantAccount(inserts=1, insert_bytes=100),
        }
        shard1 = {1: TenantAccount(inserts=1, insert_bytes=200)}
        rollups = rollup_tenants(
            [shard0, shard1],
            shard_host_write_bytes=[4_000, 1_000],
            shard_flash_write_bytes=[8_000, 2_000],
        )
        assert rollups[1].attributed_flash_write_bytes == pytest.approx(
            8_000 * 0.75 + 2_000 * 1.0
        )
        assert rollups[2].attributed_flash_write_bytes == pytest.approx(
            8_000 * 0.25
        )
        # WA = attributed flash bytes / tenant logical bytes.
        assert rollups[1].write_amplification == pytest.approx(
            (8_000 * 0.75 + 2_000) / 500
        )

    def test_tenants_reported_in_id_order(self):
        rollups = rollup_tenants(
            [{3: TenantAccount(inserts=1, insert_bytes=10),
              1: TenantAccount(inserts=1, insert_bytes=10)}],
            shard_host_write_bytes=[100],
            shard_flash_write_bytes=[100],
        )
        assert list(rollups) == [1, 3]
