"""Shared fixtures: tiny geometries and traces sized for fast tests.

Also hosts the seeded test-order shuffle: tests run in a randomized
(but reproducible) order so hidden inter-test state dependencies are
flushed out instead of silently relied on.  ``--order-seed N`` picks
the shuffle; ``--order-seed -1`` restores plain collection order.
"""

from __future__ import annotations

import random
from collections import defaultdict

import pytest

from repro.core.config import NemoConfig
from repro.flash.geometry import FlashGeometry
from repro.workloads.mixer import merged_twitter_trace
from repro.workloads.trace import Trace


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--order-seed",
        type=int,
        default=0,
        help="seed for the test-order shuffle (-1 runs collection order)",
    )


def pytest_report_header(config: pytest.Config) -> str:
    seed = config.getoption("--order-seed")
    if seed == -1:
        return "test order: collection order (--order-seed -1)"
    return f"test order: shuffled with --order-seed {seed}"


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    """Shuffle test order, keeping each module's tests contiguous.

    Module-level locality is preserved (module-scoped fixtures set up
    once) while both the module order and the order within every module
    are randomized by the seed.
    """
    seed = config.getoption("--order-seed")
    if seed == -1:
        return
    rng = random.Random(seed)
    by_module: defaultdict[str, list[pytest.Item]] = defaultdict(list)
    for item in items:
        by_module[item.nodeid.rsplit("::", 1)[0]].append(item)
    modules = list(by_module)
    rng.shuffle(modules)
    items[:] = [
        item
        for module in modules
        for item in rng.sample(by_module[module], len(by_module[module]))
    ]


@pytest.fixture
def tiny_geometry() -> FlashGeometry:
    """8 zones x 64 KiB (16 pages of 4 KiB each): fills in milliseconds."""
    return FlashGeometry(
        page_size=4096, pages_per_block=16, num_blocks=8, blocks_per_zone=1
    )


@pytest.fixture
def small_geometry() -> FlashGeometry:
    """16 zones x 256 KiB: enough structure for engine integration tests."""
    return FlashGeometry(
        page_size=4096, pages_per_block=64, num_blocks=16, blocks_per_zone=1
    )


@pytest.fixture
def nemo_test_config() -> NemoConfig:
    """Nemo config matched to the small test geometries."""
    return NemoConfig(
        flush_threshold=4,
        sgs_per_index_group=3,
        bf_capacity_per_set=20,
    )


_TRACE_CACHE: dict[tuple, Trace] = {}


def cached_twitter_trace(num_requests: int, wss_scale: float, seed: int = 0) -> Trace:
    key = (num_requests, wss_scale, seed)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = merged_twitter_trace(
            num_requests=num_requests, wss_scale=wss_scale, seed=seed
        )
    return _TRACE_CACHE[key]


@pytest.fixture
def small_trace() -> Trace:
    """~40k-request merged Twitter trace with a small working set."""
    return cached_twitter_trace(40_000, 1.0 / 2048)


@pytest.fixture
def pressure_trace() -> Trace:
    """Trace whose referenced working set exceeds the small geometries."""
    return cached_twitter_trace(60_000, 1.0 / 512)
