"""Unit + property tests for bloom filters and their sizing math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import (
    BloomFilter,
    bloom_bits_per_object,
    bloom_filter_bits,
    bloom_num_hashes,
)
from repro.errors import ConfigError


class TestSizingMath:
    def test_paper_values(self):
        """Table 3 / §4.1: 14.4 b/obj at 0.1 %, 9.6 b/obj at 1 %."""
        assert bloom_bits_per_object(0.001) == pytest.approx(14.4, abs=0.05)
        assert bloom_bits_per_object(0.01) == pytest.approx(9.6, abs=0.05)

    def test_paper_filter_size(self):
        """§5.1: capacity 40 at 0.1 % → 576 bits (72 B)."""
        assert bloom_filter_bits(40, 0.001) == 576

    def test_hash_count(self):
        assert bloom_num_hashes(0.001) == 10
        assert bloom_num_hashes(0.01) == 7

    def test_tighter_rate_needs_more_bits(self):
        assert bloom_bits_per_object(0.0001) > bloom_bits_per_object(0.01)

    def test_invalid_rates_rejected(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigError):
                bloom_bits_per_object(bad)
            with pytest.raises(ConfigError):
                bloom_num_hashes(bad)

    def test_filter_bits_whole_bytes(self):
        assert bloom_filter_bits(10, 0.02) % 8 == 0


class TestFilterBehaviour:
    def test_no_false_negatives(self):
        bf = BloomFilter.for_capacity(100, 0.01)
        for key in range(100):
            bf.add(key)
        for key in range(100):
            assert key in bf

    def test_empty_filter_rejects_everything(self):
        bf = BloomFilter.for_capacity(10, 0.01)
        assert 42 not in bf
        assert bf.count == 0

    def test_false_positive_rate_near_target(self):
        bf = BloomFilter.for_capacity(200, 0.01)
        for key in range(200):
            bf.add(key)
        false_hits = sum(1 for key in range(10_000, 40_000) if key in bf)
        assert false_hits / 30_000 < 0.03  # target 1 %, allow 3x head-room

    def test_clear(self):
        bf = BloomFilter.for_capacity(10, 0.01)
        bf.add(1)
        bf.clear()
        assert 1 not in bf
        assert bf.count == 0

    def test_fill_fraction_grows(self):
        bf = BloomFilter.for_capacity(50, 0.01)
        assert bf.fill_fraction() == 0.0
        bf.add(1)
        assert bf.fill_fraction() > 0.0

    def test_expected_fp_rate_tracks_load(self):
        bf = BloomFilter.for_capacity(50, 0.01)
        for key in range(50):
            bf.add(key)
        assert 0.0 < bf.expected_fp_rate() < 0.05

    def test_serialisation_roundtrip(self):
        bf = BloomFilter.for_capacity(40, 0.001)
        for key in (5, 17, 998877):
            bf.add(key)
        data = bf.to_bytes()
        assert len(data) == bf.size_bytes == 72
        clone = BloomFilter.from_bytes(data, bf.num_hashes)
        for key in (5, 17, 998877):
            assert key in clone
        assert 31337 in clone if 31337 in bf else 31337 not in clone

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigError):
            BloomFilter(0, 1)
        with pytest.raises(ConfigError):
            BloomFilter(8, 0)
        with pytest.raises(ConfigError):
            bloom_filter_bits(0, 0.01)


@settings(max_examples=50, deadline=None)
@given(keys=st.sets(st.integers(0, 2**60), min_size=1, max_size=60))
def test_membership_property(keys):
    """Added keys are always members (no false negatives), any key set."""
    bf = BloomFilter.for_capacity(max(len(keys), 10), 0.005)
    for key in keys:
        bf.add(key)
    assert all(key in bf for key in keys)


@settings(max_examples=20, deadline=None)
@given(fp=st.floats(0.0001, 0.2))
def test_sizing_monotone_property(fp):
    assert bloom_bits_per_object(fp) >= bloom_bits_per_object(0.2) - 1e-9
    assert bloom_num_hashes(fp) >= 1
