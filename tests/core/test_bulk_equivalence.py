"""Property tests: bulk fast paths match their scalar references exactly.

The vectorized request pipeline and the columnar replay lane lean on
bulk primitives whose results must be bit-for-bit identical to the
scalar paths they replace:

- :meth:`BloomFilter.add_many` / :meth:`BloomFilter.contains_many`
  versus per-key ``add`` / ``__contains__``;
- the array kernels (:meth:`BloomFilter.add_array` /
  :meth:`BloomFilter.contains_array`, :meth:`HotnessTracker.\
record_access_array` / :meth:`HotnessTracker.is_hot_array`,
  :meth:`IndexCache.access_many`, :meth:`SetGroupQueue.find_many`)
  versus their scalar loops;
- :meth:`ZipfGenerator.sample` drawing one batch versus the same seeded
  generator drawing the stream in arbitrary smaller pieces.

Hypothesis drives all of them over adversarial key sets, structure
geometries and batch splits.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter
from repro.core.hotness import HotnessTracker
from repro.core.index_cache import IndexCache
from repro.core.sgqueue import SetGroupQueue
from repro.workloads.zipf import ZipfGenerator

_keys = st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=60)


class TestBloomBulkEquivalence:
    @given(
        keys=_keys,
        num_bits=st.integers(min_value=8, max_value=1024),
        num_hashes=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_add_many_matches_scalar_add(self, keys, num_bits, num_hashes):
        scalar = BloomFilter(num_bits, num_hashes)
        bulk = BloomFilter(num_bits, num_hashes)
        for key in keys:
            scalar.add(key)
        bulk.add_many(keys)
        assert bulk._bits == scalar._bits
        assert bulk.count == scalar.count

    @given(
        added=_keys,
        queried=_keys,
        num_bits=st.integers(min_value=8, max_value=1024),
        num_hashes=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_contains_many_matches_scalar_contains(
        self, added, queried, num_bits, num_hashes
    ):
        bf = BloomFilter(num_bits, num_hashes)
        bf.add_many(added)
        # Query a mix of members and non-members.
        queries = added + queried
        assert bf.contains_many(queries) == [key in bf for key in queries]


class TestBloomArrayKernelEquivalence:
    @given(
        keys=_keys,
        num_bits=st.integers(min_value=8, max_value=1024),
        num_hashes=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_add_array_matches_scalar_add(self, keys, num_bits, num_hashes):
        scalar = BloomFilter(num_bits, num_hashes)
        bulk = BloomFilter(num_bits, num_hashes)
        for key in keys:
            scalar.add(key)
        bulk.add_array(np.asarray(keys, dtype=np.uint64))
        assert bulk._bits == scalar._bits
        assert bulk.count == scalar.count

    @given(
        added=_keys,
        queried=_keys,
        num_bits=st.integers(min_value=8, max_value=1024),
        num_hashes=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_contains_array_matches_scalar_contains(
        self, added, queried, num_bits, num_hashes
    ):
        bf = BloomFilter(num_bits, num_hashes)
        bf.add_array(np.asarray(added, dtype=np.uint64))
        queries = added + queried
        verdicts = bf.contains_array(np.asarray(queries, dtype=np.uint64))
        assert verdicts.tolist() == [key in bf for key in queries]

    def test_non_byte_aligned_num_bits(self):
        """Exactness when num_bits is not a multiple of 8 (packbits pad)."""
        keys = list(range(200))
        scalar = BloomFilter(577, 5)
        bulk = BloomFilter(577, 5)
        for key in keys:
            scalar.add(key)
        bulk.add_array(np.asarray(keys, dtype=np.uint64))
        assert bulk._bits == scalar._bits
        queries = np.arange(400, dtype=np.uint64)
        assert bulk.contains_array(queries).tolist() == [
            int(k) in scalar for k in queries
        ]


class TestHotnessArrayKernelEquivalence:
    @staticmethod
    def _make_pair(num_offsets, cached_pages):
        def page_of(offset):
            return offset // 4

        def page_cached(page_idx):
            return page_idx in cached_pages

        return (
            HotnessTracker(
                0.3,
                page_idx_cached=page_cached,
                page_of_offset=page_of,
                num_offsets=num_offsets,
            ),
            HotnessTracker(
                0.3, page_idx_cached=page_cached, page_of_offset=page_of
            ),
        )

    @given(
        events=st.lists(
            st.tuples(
                st.integers(0, 30),  # key
                st.integers(0, 63),  # offset
                st.booleans(),  # in_window
            ),
            max_size=60,
        ),
        cached_pages=st.sets(st.integers(0, 16), max_size=8),
        queried=st.lists(st.integers(0, 40), max_size=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_array_kernels_match_scalar(self, events, cached_pages, queried):
        # Both constructor variants (flat offset->page table and the
        # callable fallback) must agree with the scalar loop.
        for tracker in self._make_pair(64, cached_pages):
            scalar = HotnessTracker(
                0.3,
                page_idx_cached=lambda p: p in cached_pages,
                page_of_offset=lambda o: o // 4,
            )
            for key, offset, in_window in events:
                scalar.record_access(key, offset, in_window=in_window)
            tracker.record_access_array(
                np.asarray([e[0] for e in events], dtype=np.int64),
                np.asarray([e[1] for e in events], dtype=np.int64),
                np.asarray([e[2] for e in events], dtype=bool),
            )
            assert tracker._bits == scalar._bits
            keys = np.asarray(queried, dtype=np.int64)
            assert tracker.is_hot_array(keys).tolist() == [
                scalar.is_hot(k) for k in queried
            ]


class TestIndexCacheBulkEquivalence:
    @given(
        batches=st.lists(
            st.lists(
                st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=12
            ),
            max_size=8,
        ),
        capacity=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=150, deadline=None)
    def test_access_many_matches_scalar_access(self, batches, capacity):
        bulk = IndexCache(capacity, num_page_indices=4)
        scalar = IndexCache(capacity, num_page_indices=4)
        for batch in batches:
            got = bulk.access_many(batch)
            want = [scalar.access(p) for p in batch]
            assert got == want
            assert list(bulk._fifo) == list(scalar._fifo)
            assert (bulk.hits, bulk.misses) == (scalar.hits, scalar.misses)


class TestSGQueueBulkEquivalence:
    @given(
        inserts=st.lists(
            st.tuples(
                st.integers(0, 3),  # offset
                st.integers(0, 20),  # key
                st.integers(1, 120),  # size
            ),
            max_size=40,
        ),
        probes=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 25)), max_size=30
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_find_many_matches_scalar_find(self, inserts, probes):
        queue = SetGroupQueue(depth=3, sets_per_sg=4, set_size=256)
        for offset, key, size in inserts:
            queue.try_insert(offset, key, size)
        offsets = [p[0] for p in probes]
        keys = [p[1] for p in probes]
        assert queue.find_many(offsets, keys) == [
            queue.find(o, k) for o, k in zip(offsets, keys)
        ]


class TestZipfBulkEquivalence:
    @given(
        num_keys=st.integers(min_value=1, max_value=500),
        alpha=st.floats(min_value=0.0, max_value=2.0,
                        allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        shuffle=st.booleans(),
        splits=st.lists(st.integers(min_value=0, max_value=40),
                        min_size=1, max_size=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_split_batches_match_single_draw(
        self, num_keys, alpha, seed, shuffle, splits
    ):
        total = sum(splits)
        whole = ZipfGenerator(
            num_keys, alpha, seed=seed, shuffle=shuffle
        ).sample(total)
        pieces_gen = ZipfGenerator(num_keys, alpha, seed=seed, shuffle=shuffle)
        pieces = [pieces_gen.sample(n) for n in splits]
        assert np.array_equal(whole, np.concatenate(pieces))

    @given(
        num_keys=st.integers(min_value=1, max_value=200),
        alpha=st.floats(min_value=0.0, max_value=2.0,
                        allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        count=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_bulk_draw_matches_one_at_a_time_reference(
        self, num_keys, alpha, seed, count
    ):
        bulk = ZipfGenerator(num_keys, alpha, seed=seed).sample(count)
        ref_gen = ZipfGenerator(num_keys, alpha, seed=seed)
        reference = [int(ref_gen.sample(1)[0]) for _ in range(count)]
        assert bulk.tolist() == reference
