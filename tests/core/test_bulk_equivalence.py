"""Property tests: bulk fast paths match their scalar references exactly.

The vectorized request pipeline leans on two bulk primitives whose
results must be bit-for-bit identical to the scalar paths they replace:

- :meth:`BloomFilter.add_many` / :meth:`BloomFilter.contains_many`
  versus per-key ``add`` / ``__contains__``;
- :meth:`ZipfGenerator.sample` drawing one batch versus the same seeded
  generator drawing the stream in arbitrary smaller pieces.

Hypothesis drives both over adversarial key sets, filter geometries and
batch splits.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter
from repro.workloads.zipf import ZipfGenerator

_keys = st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=60)


class TestBloomBulkEquivalence:
    @given(
        keys=_keys,
        num_bits=st.integers(min_value=8, max_value=1024),
        num_hashes=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_add_many_matches_scalar_add(self, keys, num_bits, num_hashes):
        scalar = BloomFilter(num_bits, num_hashes)
        bulk = BloomFilter(num_bits, num_hashes)
        for key in keys:
            scalar.add(key)
        bulk.add_many(keys)
        assert bulk._bits == scalar._bits
        assert bulk.count == scalar.count

    @given(
        added=_keys,
        queried=_keys,
        num_bits=st.integers(min_value=8, max_value=1024),
        num_hashes=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_contains_many_matches_scalar_contains(
        self, added, queried, num_bits, num_hashes
    ):
        bf = BloomFilter(num_bits, num_hashes)
        bf.add_many(added)
        # Query a mix of members and non-members.
        queries = added + queried
        assert bf.contains_many(queries) == [key in bf for key in queries]


class TestZipfBulkEquivalence:
    @given(
        num_keys=st.integers(min_value=1, max_value=500),
        alpha=st.floats(min_value=0.0, max_value=2.0,
                        allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        shuffle=st.booleans(),
        splits=st.lists(st.integers(min_value=0, max_value=40),
                        min_size=1, max_size=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_split_batches_match_single_draw(
        self, num_keys, alpha, seed, shuffle, splits
    ):
        total = sum(splits)
        whole = ZipfGenerator(
            num_keys, alpha, seed=seed, shuffle=shuffle
        ).sample(total)
        pieces_gen = ZipfGenerator(num_keys, alpha, seed=seed, shuffle=shuffle)
        pieces = [pieces_gen.sample(n) for n in splits]
        assert np.array_equal(whole, np.concatenate(pieces))

    @given(
        num_keys=st.integers(min_value=1, max_value=200),
        alpha=st.floats(min_value=0.0, max_value=2.0,
                        allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        count=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_bulk_draw_matches_one_at_a_time_reference(
        self, num_keys, alpha, seed, count
    ):
        bulk = ZipfGenerator(num_keys, alpha, seed=seed).sample(count)
        ref_gen = ZipfGenerator(num_keys, alpha, seed=seed)
        reference = [int(ref_gen.sample(1)[0]) for _ in range(count)]
        assert bulk.tolist() == reference
