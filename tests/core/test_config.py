"""Unit tests for NemoConfig validation and ablation helpers."""

import pytest

from repro.core.config import FlushPolicyKind, NemoConfig
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_match_table3(self):
        cfg = NemoConfig()
        assert cfg.num_inmem_sgs == 2
        assert cfg.flush_threshold == 4096
        assert cfg.bf_false_positive_rate == 0.001
        assert cfg.cached_index_ratio == 0.5
        assert cfg.hotness_window_fraction == 0.3
        assert cfg.cooling_interval_fraction == 0.1
        assert cfg.flush_policy is FlushPolicyKind.COUNT

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_inmem_sgs", 0),
            ("flush_threshold", 0),
            ("flush_probability", 0.0),
            ("flush_probability", 1.5),
            ("bf_false_positive_rate", 0.0),
            ("bf_false_positive_rate", 1.0),
            ("bf_capacity_per_set", 0),
            ("sgs_per_index_group", 0),
            ("cached_index_ratio", -0.1),
            ("cached_index_ratio", 1.1),
            ("hotness_window_fraction", 1.2),
            ("cooling_interval_fraction", 0.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            NemoConfig(**{field: value})


class TestAblation:
    def test_effective_queue_depth(self):
        assert NemoConfig(num_inmem_sgs=3).effective_inmem_sgs == 3
        assert (
            NemoConfig(num_inmem_sgs=3, enable_buffered_sgs=False).effective_inmem_sgs
            == 1
        )

    def test_ablation_grid(self):
        cfg = NemoConfig.ablation(buffered=False, delayed=True, writeback=False)
        assert not cfg.enable_buffered_sgs
        assert cfg.enable_delayed_flush
        assert not cfg.enable_writeback

    def test_ablation_passes_overrides(self):
        cfg = NemoConfig.ablation(
            buffered=True, delayed=True, writeback=True, flush_threshold=7
        )
        assert cfg.flush_threshold == 7
