"""Unit tests for the delayed-flush policy."""

import pytest

from repro.core.config import FlushPolicyKind, NemoConfig
from repro.core.flusher import FlushDecision, FlushPolicy


def make_policy(**overrides):
    cfg = NemoConfig(**overrides)
    return FlushPolicy(cfg)


class TestNaive:
    def test_always_flushes(self):
        policy = make_policy(enable_delayed_flush=False)
        for _ in range(5):
            assert policy.decide() is FlushDecision.FLUSH
        assert policy.flushes == 5
        assert policy.deferrals == 0


class TestCount:
    def test_flushes_every_nth(self):
        policy = make_policy(flush_policy=FlushPolicyKind.COUNT, flush_threshold=4)
        decisions = [policy.decide() for _ in range(8)]
        assert decisions.count(FlushDecision.FLUSH) == 2
        assert decisions[3] is FlushDecision.FLUSH
        assert decisions[7] is FlushDecision.FLUSH

    def test_telemetry(self):
        policy = make_policy(flush_policy=FlushPolicyKind.COUNT, flush_threshold=3)
        for _ in range(7):
            policy.decide()
        assert policy.blocked_inserts == 7
        assert policy.flushes == 2
        assert policy.deferrals == 5
        assert policy.profit_denominator == 5

    def test_forced_flush_resets_window(self):
        policy = make_policy(flush_policy=FlushPolicyKind.COUNT, flush_threshold=3)
        policy.decide()
        policy.decide()
        policy.notify_forced_flush()
        assert policy.decide() is FlushDecision.MAKE_ROOM

    def test_threshold_one_is_naive(self):
        policy = make_policy(flush_policy=FlushPolicyKind.COUNT, flush_threshold=1)
        assert policy.decide() is FlushDecision.FLUSH


class TestProbabilistic:
    def test_rate_matches_probability(self):
        policy = make_policy(
            flush_policy=FlushPolicyKind.PROBABILISTIC,
            flush_probability=0.25,
            rng_seed=42,
        )
        n = 8000
        flushes = sum(policy.decide() is FlushDecision.FLUSH for _ in range(n))
        assert flushes / n == pytest.approx(0.25, abs=0.03)

    def test_deterministic_given_seed(self):
        a = make_policy(
            flush_policy=FlushPolicyKind.PROBABILISTIC, flush_probability=0.1, rng_seed=9
        )
        b = make_policy(
            flush_policy=FlushPolicyKind.PROBABILISTIC, flush_probability=0.1, rng_seed=9
        )
        assert [a.decide() for _ in range(100)] == [b.decide() for _ in range(100)]


class TestAblationWiring:
    def test_disabled_delay_overrides_policy_kind(self):
        policy = make_policy(
            enable_delayed_flush=False, flush_policy=FlushPolicyKind.COUNT
        )
        assert policy.kind is FlushPolicyKind.NAIVE
