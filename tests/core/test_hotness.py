"""Unit tests for the hybrid hotness tracker (§4.4, Fig. 11)."""

import pytest

from repro.core.hotness import HotnessTracker
from repro.errors import ConfigError


class FakeCache:
    """Controllable 'is this group-page cached?' oracle."""

    def __init__(self):
        self.cached: set[int] = set()

    def __call__(self, page_idx: int) -> bool:
        return page_idx in self.cached


@pytest.fixture
def setup():
    cache = FakeCache()
    tracker = HotnessTracker(
        0.3,
        page_idx_cached=cache,
        page_of_offset=lambda o: o // 4,  # 4 offsets per index page
    )
    return tracker, cache


class TestAccessBits:
    def test_access_inside_window_sets_bit(self, setup):
        tracker, cache = setup
        cache.cached.add(0)
        tracker.record_access(key=1, offset=2, in_window=True)
        assert tracker.is_hot(1)

    def test_access_outside_window_ignored(self, setup):
        tracker, cache = setup
        cache.cached.add(0)
        tracker.record_access(key=1, offset=2, in_window=False)
        assert not tracker.is_hot(1)
        assert tracker.tracked_count() == 0

    def test_hybrid_requires_cached_pbfg(self, setup):
        """Bit set but PBFG not cached → not hot (the hybrid AND)."""
        tracker, cache = setup
        tracker.record_access(key=1, offset=2, in_window=True)
        assert not tracker.is_hot(1)
        cache.cached.add(0)
        assert tracker.is_hot(1)

    def test_discard(self, setup):
        tracker, cache = setup
        cache.cached.add(0)
        tracker.record_access(key=1, offset=0, in_window=True)
        tracker.discard(1)
        assert not tracker.is_hot(1)


class TestCooling:
    def test_cooling_clears_uncached_bits(self, setup):
        """Fig. 11: bits for sets with cached PBFGs survive, others die."""
        tracker, cache = setup
        cache.cached.add(0)  # offsets 0-3 cached
        tracker.record_access(key=1, offset=1, in_window=True)   # cached
        tracker.record_access(key=2, offset=9, in_window=True)   # not cached
        cleared = tracker.cool()
        assert cleared == 1
        assert tracker.is_hot(1)
        assert not tracker.is_hot(2)
        assert tracker.coolings == 1
        assert tracker.bits_cleared == 1

    def test_cooling_is_idempotent_on_survivors(self, setup):
        tracker, cache = setup
        cache.cached.add(0)
        tracker.record_access(key=1, offset=0, in_window=True)
        tracker.cool()
        assert tracker.cool() == 0
        assert tracker.is_hot(1)

    def test_recency_change_affects_later_cooling(self, setup):
        """An initially hot set that cools loses its objects' bits."""
        tracker, cache = setup
        cache.cached.add(0)
        tracker.record_access(key=1, offset=0, in_window=True)
        cache.cached.discard(0)  # PBFG evicted from the index cache
        tracker.cool()
        assert not tracker.is_hot(1)
        assert tracker.tracked_count() == 0


class TestAccounting:
    def test_bits_per_object_is_window_fraction(self, setup):
        tracker, _ = setup
        assert tracker.bits_per_object() == pytest.approx(0.3)

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigError):
            HotnessTracker(1.5, page_idx_cached=bool, page_of_offset=int)
