"""Unit tests for the FIFO index cache and the on-flash index pool."""

import pytest

from repro.core.index_cache import IndexCache, IndexPool
from repro.core.pbfg import IndexLayout
from repro.errors import ConfigError, EngineStateError
from repro.flash.geometry import FlashGeometry
from repro.flash.zns import ZNSDevice


class TestIndexCache:
    def test_miss_then_hit(self):
        cache = IndexCache(2)
        assert not cache.access((0, 0))
        assert cache.access((0, 0))
        assert cache.hits == 1
        assert cache.misses == 1

    def test_fifo_eviction_order(self):
        cache = IndexCache(2)
        cache.access((0, 0))
        cache.access((0, 1))
        cache.access((0, 2))  # evicts (0,0)
        assert (0, 0) not in cache
        assert (0, 1) in cache

    def test_fifo_does_not_refresh_on_hit(self):
        cache = IndexCache(2)
        cache.access((0, 0))
        cache.access((0, 1))
        cache.access((0, 0))  # hit; FIFO position unchanged
        cache.access((0, 2))  # still evicts (0,0)
        assert (0, 0) not in cache

    def test_zero_capacity_never_stores(self):
        cache = IndexCache(0)
        assert not cache.access((0, 0))
        assert not cache.access((0, 0))
        assert len(cache) == 0

    def test_page_idx_occupancy(self):
        cache = IndexCache(4)
        cache.access((0, 3))
        cache.access((1, 3))
        assert cache.page_idx_cached(3)
        assert not cache.page_idx_cached(2)
        cache.drop_group(0)
        assert cache.page_idx_cached(3)  # (1,3) still present
        cache.drop_group(1)
        assert not cache.page_idx_cached(3)

    def test_miss_ratio(self):
        cache = IndexCache(8)
        cache.access((0, 0))
        cache.access((0, 0))
        assert cache.miss_ratio == 0.5

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            IndexCache(-1)


def make_pool(num_zones=3, sets_per_sg=8, sgs_per_group=2):
    geo = FlashGeometry(
        page_size=4096,
        pages_per_block=8,
        num_blocks=num_zones,
        blocks_per_zone=1,
    )
    device = ZNSDevice(geo)
    layout = IndexLayout(
        page_size=4096,
        sets_per_sg=sets_per_sg,
        sgs_per_group=sgs_per_group,
        bf_capacity=40,
        bf_false_positive_rate=0.001,
    )
    pool = IndexPool(device, list(range(num_zones)), layout)
    return pool, layout, device


def group_payloads(layout):
    return [("pbfg-page", (0,), j) for j in range(layout.pages_per_group)]


class TestIndexPool:
    def test_write_and_retrieve(self):
        pool, layout, _ = make_pool()
        gid = pool.write_group([0, 1], group_payloads(layout))
        entries = pool.pages_for_offset(0)
        assert len(entries) == 1
        (page_key, physical) = entries[0]
        assert page_key == (gid, layout.page_of_offset(0))
        assert physical >= 0

    def test_wrong_page_count_rejected(self):
        pool, layout, _ = make_pool()
        with pytest.raises(ConfigError):
            pool.write_group([0], [("pbfg-page", (0,), 0)] * (layout.pages_per_group + 1))

    def test_dead_groups_excluded_from_lookup(self):
        pool, layout, _ = make_pool()
        pool.write_group([0, 1], group_payloads(layout))
        pool.on_sg_evicted(0)
        assert pool.pages_for_offset(0)  # one member still live
        pool.on_sg_evicted(1)
        assert pool.pages_for_offset(0) == []

    def test_dead_group_callback(self):
        pool, layout, _ = make_pool()
        dead = []
        pool.on_group_dead = dead.append
        gid = pool.write_group([5, 6], group_payloads(layout))
        pool.on_sg_evicted(5)
        pool.on_sg_evicted(6)
        assert dead == [gid]

    def test_zone_reclaimed_when_groups_dead(self):
        pool, layout, device = make_pool(num_zones=2, sets_per_sg=8, sgs_per_group=1)
        # Each group takes one 8-page zone (pages_per_group == 8/4 = 2?).
        written = []
        for i in range(8):
            written.append(pool.write_group([i], group_payloads(layout)))
            # Kill old groups aggressively so reclamation can proceed.
            if i >= 2:
                pool.on_sg_evicted(i - 2)
        assert device.stats.erase_ops >= 0  # reclamation path exercised

    def test_starved_pool_raises(self):
        pool, layout, _ = make_pool(num_zones=1, sgs_per_group=1)
        per_zone = 8 // layout.pages_per_group
        with pytest.raises(EngineStateError):
            for i in range(per_zone + 1):  # all groups stay live
                pool.write_group([i], group_payloads(layout))

    def test_group_of_sg(self):
        pool, layout, _ = make_pool()
        gid = pool.write_group([3, 4], group_payloads(layout))
        assert pool.group_of_sg(3) == gid
        assert pool.group_of_sg(99) is None

    def test_live_counts(self):
        pool, layout, _ = make_pool()
        pool.write_group([0, 1], group_payloads(layout))
        assert pool.live_group_count() == 1
        assert pool.live_page_count() == layout.pages_per_group
        pool.on_sg_evicted(0)
        pool.on_sg_evicted(1)
        assert pool.live_group_count() == 0
