"""Index-pool physical placement edge cases."""

import pytest

from repro.core.index_cache import IndexPool
from repro.core.pbfg import IndexLayout
from repro.errors import EngineStateError
from repro.flash.geometry import FlashGeometry
from repro.flash.zns import ZNSDevice


def make_pool(num_zones=3, pages_per_zone=8, sets_per_sg=24, sgs_per_group=1):
    geo = FlashGeometry(
        page_size=4096,
        pages_per_block=pages_per_zone,
        num_blocks=num_zones,
        blocks_per_zone=1,
    )
    device = ZNSDevice(geo)
    layout = IndexLayout(
        page_size=4096,
        sets_per_sg=sets_per_sg,
        sgs_per_group=sgs_per_group,
        bf_capacity=40,
        bf_false_positive_rate=0.001,
    )
    pool = IndexPool(device, list(range(num_zones)), layout)
    return pool, layout, device


def payloads(layout, gid=0):
    return [("pbfg-page", (gid,), j) for j in range(layout.pages_per_group)]


class TestPlacement:
    def test_group_never_splits_across_zones(self):
        # 56 filters fit one page at capacity 40 / 0.1 %; 112 sets give
        # 2-page groups inside the 8-page zones.
        pool, layout, device = make_pool(sets_per_sg=112)
        assert layout.pages_per_group == 2
        gids = [pool.write_group([i], payloads(layout, i)) for i in range(2)]
        for gid in gids:
            zones = {device.geometry.page_to_zone(p) for p in pool.groups[gid].pages}
            assert len(zones) == 1

    def test_partial_zone_skipped_when_group_does_not_fit(self):
        pool, layout, device = make_pool(sets_per_sg=168)
        # pages_per_group now 3; an 8-page zone holds 2 groups + 2 slack.
        assert layout.pages_per_group == 3
        for i in range(3):
            pool.write_group([i], payloads(layout, i))
        # Third group must have opened a second zone.
        zones_used = {g.zone_id for g in pool.groups.values()}
        assert len(zones_used) == 2

    def test_generation_cache_sees_new_groups(self):
        pool, layout, _ = make_pool()
        assert pool.pages_for_offset(0) == []
        pool.write_group([0], payloads(layout))
        assert len(pool.pages_for_offset(0)) == 1
        pool.write_group([1], payloads(layout, 1))
        assert len(pool.pages_for_offset(0)) == 2

    def test_generation_cache_sees_deaths(self):
        pool, layout, _ = make_pool()
        pool.write_group([0], payloads(layout))
        assert len(pool.pages_for_offset(0)) == 1
        pool.on_sg_evicted(0)
        assert pool.pages_for_offset(0) == []

    def test_reclaim_requires_dead_groups(self):
        pool, layout, _ = make_pool(num_zones=1)
        per_zone = 8 // layout.pages_per_group
        for i in range(per_zone):
            pool.write_group([i], payloads(layout, i))
        with pytest.raises(EngineStateError):
            pool.write_group([99], payloads(layout, 99))
        # Kill the oldest groups; the pool can rotate again.
        for i in range(per_zone):
            pool.on_sg_evicted(i)
        pool.write_group([99], payloads(layout, 99))
        assert pool.live_group_count() == 1
