"""Tests for multi-zone Set-Groups (paper §6, small-zone devices).

On small-zone ZNS devices (e.g. Samsung PM1731a) "an SG is composed of
multiple zones"; the engine's behaviour must be equivalent to the
single-zone mapping — same placement semantics, same WA accounting —
with only the physical layout differing.
"""

import pytest

from repro.core.config import NemoConfig
from repro.core.nemo import NemoCache
from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry


def small_zone_geometry(num_zones=24):
    """64 KiB zones: 16 pages each (a scaled small-zone device)."""
    return FlashGeometry(
        page_size=4096, pages_per_block=16, num_blocks=num_zones, blocks_per_zone=1
    )


def make_cache(zones_per_sg, **overrides):
    params = dict(
        flush_threshold=4,
        sgs_per_index_group=2,
        bf_capacity_per_set=20,
        zones_per_sg=zones_per_sg,
    )
    params.update(overrides)
    return NemoCache(small_zone_geometry(), NemoConfig(**params))


class TestLayout:
    def test_sets_scale_with_zones_per_sg(self):
        assert make_cache(1).sets_per_sg == 16
        assert make_cache(4).sets_per_sg == 64

    def test_pool_capacity_divides(self):
        cache = make_cache(4)
        assert cache.pool_capacity_sgs == cache.sg_zone_count // 4

    def test_invalid_zones_per_sg(self):
        with pytest.raises(ConfigError):
            make_cache(0)

    def test_too_large_sg_rejected(self):
        with pytest.raises(ConfigError):
            make_cache(16)  # SGs larger than half the device


class TestBehaviour:
    def test_flush_spans_multiple_zones(self):
        cache = make_cache(4)
        for key in range(8000):
            cache.insert(key, 250)
        assert cache.pool
        fsg = cache.pool[0]
        assert len(fsg.zone_ids) == 4
        assert len(fsg.page_bases) == 4

    def test_page_of_maps_offsets_across_zones(self):
        cache = make_cache(2)
        for key in range(8000):
            cache.insert(key, 250)
        fsg = cache.pool[0]
        first_zone_page = fsg.page_of(0)
        second_zone_page = fsg.page_of(16)  # first offset of zone 2
        geo = cache.geometry
        assert geo.page_to_zone(first_zone_page) == fsg.zone_ids[0]
        assert geo.page_to_zone(second_zone_page) == fsg.zone_ids[1]

    def test_lookup_roundtrip_across_zones(self):
        cache = make_cache(4)
        for key in range(12_000):
            cache.insert(key, 250)
        hits = sum(cache.lookup(k, 250).hit for k in range(11_000, 12_000))
        assert hits == 1000

    def test_eviction_frees_all_member_zones(self):
        cache = make_cache(2)
        for key in range(60_000):
            cache.insert(key, 250)
        assert len(cache.pool) <= cache.pool_capacity_sgs
        # All free zones accounted: pool zones + free zones == SG zones.
        pooled = sum(len(f.zone_ids) for f in cache.pool)
        assert pooled + len(cache._free_sg_zones) == cache.sg_zone_count

    def test_wa_comparable_to_single_zone(self):
        """The zone composition is physical only: WA stays in the same
        band as the single-zone mapping at equal SG capacity."""
        multi = make_cache(4)
        for key in range(40_000):
            multi.insert(key, 250)
        single_geo = FlashGeometry(
            page_size=4096, pages_per_block=16, num_blocks=24, blocks_per_zone=4
        )
        single = NemoCache(
            single_geo,
            NemoConfig(
                flush_threshold=4, sgs_per_index_group=2, bf_capacity_per_set=20
            ),
        )
        for key in range(40_000):
            single.insert(key, 250)
        assert multi.write_amplification == pytest.approx(
            single.write_amplification, rel=0.25
        )
