"""Unit + integration + property tests for the Nemo engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import NemoConfig
from repro.core.nemo import NemoCache
from repro.errors import ObjectTooLargeError
from repro.flash.geometry import FlashGeometry


def tiny_nemo(**config_overrides) -> NemoCache:
    geo = FlashGeometry(
        page_size=4096, pages_per_block=16, num_blocks=8, blocks_per_zone=1
    )
    params = dict(
        flush_threshold=4,
        sgs_per_index_group=2,
        bf_capacity_per_set=20,
        cooling_interval_fraction=0.2,
    )
    params.update(config_overrides)
    return NemoCache(geo, NemoConfig(**params))


class TestBasicOps:
    def test_miss_on_empty(self):
        cache = tiny_nemo()
        assert not cache.lookup(1, 100).hit

    def test_insert_then_memory_hit(self):
        cache = tiny_nemo()
        cache.insert(1, 100)
        result = cache.lookup(1, 100)
        assert result.hit
        assert result.source == "memory"
        assert result.flash_reads == 0

    def test_object_count(self):
        cache = tiny_nemo()
        for key in range(10):
            cache.insert(key, 200)
        assert cache.object_count() == 10

    def test_update_keeps_single_copy(self):
        cache = tiny_nemo()
        cache.insert(1, 100)
        cache.insert(1, 150)
        assert cache.object_count() == 1

    def test_oversized_object_rejected(self):
        cache = tiny_nemo()
        with pytest.raises(ObjectTooLargeError):
            cache.insert(1, 5000)

    def test_delete_from_memory(self):
        cache = tiny_nemo()
        cache.insert(1, 100)
        assert cache.delete(1)
        assert not cache.lookup(1, 100).hit
        assert not cache.delete(1)


def fill_to_flash(cache, n=4000, size=200, start=0):
    """Insert enough distinct objects to force SG flushes."""
    for key in range(start, start + n):
        cache.insert(key, size)
    return cache


class TestFlushPath:
    def test_flushes_happen_under_pressure(self):
        cache = fill_to_flash(tiny_nemo())
        assert len(cache.pool) > 0
        assert cache.stats.host_write_bytes > 0

    def test_flash_hit_after_flush(self):
        cache = fill_to_flash(tiny_nemo())
        flash_keys = [k for k in range(4000) if cache._flash_index.get(k) is not None]
        assert flash_keys
        result = cache.lookup(flash_keys[0], 200)
        assert result.hit
        assert result.source == "flash"
        assert result.flash_reads >= 1

    def test_fill_rates_recorded(self):
        cache = fill_to_flash(tiny_nemo())
        # One fill sample per flushed SG (evicted SGs keep their sample).
        assert len(cache.fill_rates) >= len(cache.pool)
        assert all(0 < f <= 1.0 for f in cache.fill_rates)

    def test_wa_defined_after_flush(self):
        cache = fill_to_flash(tiny_nemo())
        assert cache.write_amplification > 0

    def test_eviction_wraps_pool(self):
        cache = fill_to_flash(tiny_nemo(), n=20_000)
        assert len(cache.pool) <= cache.pool_capacity_sgs
        assert cache.counters.evicted_objects > 0

    def test_evicted_keys_miss(self):
        cache = fill_to_flash(tiny_nemo(enable_writeback=False), n=20_000)
        # The earliest keys were evicted with the oldest SGs.
        assert not cache.lookup(0, 200).hit or cache._flash_index.get(0) is not None

    def test_pool_ids_fifo_ordered(self):
        cache = fill_to_flash(tiny_nemo(), n=20_000)
        ids = [fsg.sg_id for fsg in cache.pool]
        assert ids == sorted(ids)


class TestAccountingInvariants:
    def test_alwa_consistent_with_byte_counters(self):
        cache = fill_to_flash(tiny_nemo())
        s = cache.stats
        assert s.alwa == pytest.approx(s.host_write_bytes / s.logical_write_bytes)

    def test_writeback_not_logical(self):
        cache = fill_to_flash(tiny_nemo(), n=20_000)
        # Logical bytes == admitted bytes, regardless of writeback.
        assert cache.stats.logical_write_bytes == cache.counters.insert_bytes

    def test_dlwa_is_one_on_zns(self):
        cache = fill_to_flash(tiny_nemo(), n=10_000)
        assert cache.stats.dlwa == 1.0

    def test_flash_copies_match_pool_membership(self):
        cache = fill_to_flash(tiny_nemo(), n=10_000)
        counted = {}
        for fsg in cache.pool:
            for s in fsg.sets:
                for key in s:
                    counted[key] = counted.get(key, 0) + 1
        assert counted == cache._flash_copies

    def test_flash_index_points_to_live_sgs(self):
        cache = fill_to_flash(tiny_nemo(), n=10_000)
        live = {fsg.sg_id for fsg in cache.pool}
        assert set(cache._flash_index.values()) <= live


class TestIndexBehaviour:
    def test_index_pages_written(self):
        cache = fill_to_flash(tiny_nemo(), n=8000)
        assert cache.index_pool.live_group_count() > 0

    def test_pbfg_counters_advance(self):
        cache = fill_to_flash(tiny_nemo(), n=8000)
        for key in range(0, 8000, 7):
            cache.lookup(key, 200)
        assert cache.pbfg_lookups > 0
        assert cache.pbfg_touches >= cache.pbfg_lookups

    def test_real_filters_mode_agrees_with_statistical(self):
        """Same trace, both index modes: identical hit decisions."""
        a = fill_to_flash(tiny_nemo(use_real_filters=False), n=6000)
        b = fill_to_flash(tiny_nemo(use_real_filters=True), n=6000)
        for key in range(0, 6000, 11):
            assert a.lookup(key, 200).hit == b.lookup(key, 200).hit

    def test_real_filters_have_no_false_negatives(self):
        cache = fill_to_flash(tiny_nemo(use_real_filters=True), n=6000)
        for key, sg_id in list(cache._flash_index.items())[:200]:
            assert cache.lookup(key, 200).hit


class TestWriteback:
    def test_writeback_retains_hot_objects(self):
        cache = tiny_nemo(enable_writeback=True, cached_index_ratio=1.0)
        n = 6000
        hot = list(range(0, 40))
        key = n
        # Interleave hot lookups with a cold insert stream long enough
        # to wrap the pool several times.
        for round_ in range(30_000):
            if round_ % 4 == 0:
                k = hot[round_ % len(hot)]
                if not cache.lookup(k, 200).hit:
                    cache.insert(k, 200)
            else:
                cache.insert(key, 200)
                key += 1
        assert cache.writeback_objects > 0

    def test_disabled_writeback_never_writes_back(self):
        cache = fill_to_flash(tiny_nemo(enable_writeback=False), n=25_000)
        assert cache.writeback_objects == 0


class TestDeleteOnFlash:
    def test_delete_purges_flash_copies(self):
        cache = fill_to_flash(tiny_nemo(), n=6000)
        key = next(iter(cache._flash_index))
        assert cache.delete(key)
        assert not cache.lookup(key, 200).hit
        assert key not in cache._flash_copies


@settings(max_examples=10, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["get", "set", "delete"]),
            st.integers(0, 400),
            st.integers(50, 900),
        ),
        max_size=600,
    )
)
def test_nemo_random_ops_never_corrupt(ops):
    """Random op soup: sizes stay positive, structures stay consistent,
    and a GET hit is only possible for a key that was SET and not
    DELETEd since."""
    cache = tiny_nemo()
    live: set[int] = set()
    for op, key, size in ops:
        if op == "set":
            cache.insert(key, size)
            live.add(key)
        elif op == "delete":
            cache.delete(key)
            live.discard(key)
        else:
            result = cache.lookup(key, size)
            if result.hit:
                assert key in live  # no resurrection of deleted keys
    # Structural checks.
    assert len(cache.pool) <= cache.pool_capacity_sgs
    for fsg in cache.pool:
        for s in fsg.sets:
            assert all(v > 0 for v in s.values())
