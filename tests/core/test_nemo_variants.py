"""Nemo configuration-variant behaviour tests."""

from repro.core.config import FlushPolicyKind, NemoConfig
from repro.core.nemo import NemoCache
from repro.flash.geometry import FlashGeometry


def geometry(num_zones=10):
    return FlashGeometry(
        page_size=4096, pages_per_block=16, num_blocks=num_zones, blocks_per_zone=1
    )


def build(**overrides):
    params = dict(flush_threshold=4, sgs_per_index_group=2, bf_capacity_per_set=20)
    params.update(overrides)
    return NemoCache(geometry(), NemoConfig(**params))


def churn(cache, n=15_000, size=250):
    for key in range(n):
        cache.insert(key, size)
    return cache


class TestQueueDepth:
    def test_three_inmem_sgs(self):
        cache = churn(build(num_inmem_sgs=3))
        assert len(cache.queue) == 3
        assert cache.write_amplification > 0

    def test_deeper_queue_fills_at_least_as_well(self):
        shallow = churn(build(num_inmem_sgs=1, enable_buffered_sgs=True))
        deep = churn(build(num_inmem_sgs=3))
        assert deep.mean_fill_rate() >= shallow.mean_fill_rate() - 0.05


class TestFlushPolicies:
    def test_probabilistic_policy_runs(self):
        cache = churn(
            build(
                flush_policy=FlushPolicyKind.PROBABILISTIC,
                flush_probability=0.25,
            )
        )
        assert cache.flush_policy.flushes > 0
        assert len(cache.pool) > 0

    def test_naive_flushes_on_first_block(self):
        cache = churn(build(enable_delayed_flush=False))
        assert cache.flush_policy.deferrals == 0
        assert cache.early_evicted_objects == 0


class TestIndexKnobs:
    def test_zero_cached_ratio_always_reads_pool(self):
        cache = churn(build(cached_index_ratio=0.0))
        for key in range(0, 15_000, 7):
            cache.lookup(key, 250)
        if cache.pbfg_lookups:
            assert cache.pbfg_request_pool_ratio() > 0.9

    def test_full_cached_ratio_never_reads_pool_at_steady_state(self):
        cache = churn(build(cached_index_ratio=1.0))
        cache.pbfg_lookups = cache.pbfg_lookups_from_pool = 0
        for key in range(0, 15_000, 7):
            cache.lookup(key, 250)
        if cache.pbfg_lookups:
            assert cache.pbfg_request_pool_ratio() < 0.2

    def test_larger_groups_fewer_pages_per_lookup(self):
        small_groups = build(sgs_per_index_group=2)
        big_groups = build(sgs_per_index_group=4)
        assert (
            big_groups.layout.index_overhead_fraction()
            <= small_groups.layout.index_overhead_fraction() * 1.01
        )

    def test_looser_filters_cost_more_false_positives(self):
        tight = churn(build(bf_false_positive_rate=0.0001))
        loose = churn(build(bf_false_positive_rate=0.05))
        def probe(cache):
            cache.false_positive_reads = 0
            for key in range(100_000, 130_000):
                cache.lookup(key, 250)  # guaranteed misses
            return cache.false_positive_reads
        assert probe(loose) > probe(tight)


class TestHotnessKnobs:
    def test_zero_window_never_marks(self):
        cache = churn(build(hotness_window_fraction=0.0))
        for key in range(15_000):
            cache.lookup(key, 250)
        assert cache.hotness.tracked_count() == 0
        assert cache.memory_overhead_breakdown()["evict"] == 0.0

    def test_full_window_tracks_flash_hits(self):
        cache = churn(build(hotness_window_fraction=1.0, cached_index_ratio=1.0))
        for key in range(0, 15_000, 3):
            cache.lookup(key, 250)
        assert cache.hotness.tracked_count() > 0
