"""Unit tests for PBFG layout arithmetic and the index-group builder."""

import pytest

from repro.core.bloom import BloomFilter
from repro.core.pbfg import IndexGroupBuilder, IndexLayout
from repro.errors import ConfigError


def make_layout(**kw):
    params = dict(
        page_size=4096,
        sets_per_sg=256,
        sgs_per_group=16,
        bf_capacity=40,
        bf_false_positive_rate=0.001,
    )
    params.update(kw)
    return IndexLayout(**params)


class TestLayoutArithmetic:
    def test_paper_filter_size(self):
        layout = make_layout()
        assert layout.filter_bytes == 72  # §5.1: 576 bits

    def test_paper_packing_50_per_page(self):
        """Table 3 scale: 50 SGs per group → one PBFG per page."""
        layout = make_layout(sgs_per_group=50, sets_per_sg=1024)
        assert layout.offsets_per_page == 1
        assert layout.pages_per_group == 1024

    def test_small_groups_pack_multiple_offsets(self):
        layout = make_layout(sgs_per_group=16)
        assert layout.offsets_per_page == 4096 // (72 * 16)
        assert layout.pages_per_group == -(-256 // layout.offsets_per_page)

    def test_page_of_offset_consistent_with_offsets_of_page(self):
        layout = make_layout()
        for offset in range(layout.sets_per_sg):
            page = layout.page_of_offset(offset)
            assert offset in layout.offsets_of_page(page)

    def test_offset_out_of_range(self):
        layout = make_layout()
        with pytest.raises(ConfigError):
            layout.page_of_offset(256)

    def test_oversized_group_rejected(self):
        with pytest.raises(ConfigError):
            make_layout(sgs_per_group=100)  # 100 x 72 B > 4 KiB

    def test_fig10_packed_beats_naive(self):
        layout = make_layout()
        assert layout.packed_retrieval_pages() == 1
        assert layout.naive_retrieval_pages() == 16

    def test_index_overhead_small(self):
        layout = make_layout()
        assert 0 < layout.index_overhead_fraction() < 0.05


class TestBuilder:
    def test_statistical_mode_placeholders(self):
        layout = make_layout(sets_per_sg=8, sgs_per_group=2)
        builder = IndexGroupBuilder(layout, real_filters=False)
        assert builder.build_filters([{} for _ in range(8)]) is None
        builder.add_sg(0, None)
        assert not builder.is_full
        builder.add_sg(1, None)
        assert builder.is_full
        members, pages = builder.take_group()
        assert members == [0, 1]
        assert len(pages) == layout.pages_per_group
        assert not builder.members  # reset after take

    def test_real_mode_builds_queryable_filters(self):
        layout = make_layout(sets_per_sg=4, sgs_per_group=2)
        builder = IndexGroupBuilder(layout, real_filters=True)
        payloads = [{10: 100}, {}, {30: 100}, {}]
        filters = builder.build_filters(payloads)
        assert len(filters) == 4
        assert 10 in filters[0]
        assert 30 in filters[2]
        assert 10 not in filters[1]

    def test_real_mode_rejects_wrong_filter_count(self):
        layout = make_layout(sets_per_sg=4, sgs_per_group=2)
        builder = IndexGroupBuilder(layout, real_filters=True)
        with pytest.raises(ConfigError):
            builder.add_sg(0, None)

    def test_query_buffered(self):
        layout = make_layout(sets_per_sg=4, sgs_per_group=3)
        builder = IndexGroupBuilder(layout, real_filters=True)
        builder.add_sg(7, builder.build_filters([{1: 50}, {}, {}, {}]))
        assert builder.query_buffered(0, 1) == [7]
        assert builder.query_buffered(1, 1) == []

    def test_take_empty_rejected(self):
        layout = make_layout()
        builder = IndexGroupBuilder(layout, real_filters=False)
        with pytest.raises(ConfigError):
            builder.take_group()

    def test_real_mode_page_payload_maps_sg_offset(self):
        layout = make_layout(sets_per_sg=4, sgs_per_group=2)
        builder = IndexGroupBuilder(layout, real_filters=True)
        for sg_id in (0, 1):
            builder.add_sg(sg_id, builder.build_filters([{}, {}, {}, {}]))
        _, pages = builder.take_group()
        first = pages[0]
        assert isinstance(first, dict)
        assert all(isinstance(bf, BloomFilter) for bf in first.values())
        offsets = {o for (_sg, o) in first}
        assert offsets == set(layout.offsets_of_page(0))
