"""Unit + property tests for sets and Set-Groups."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.setgroup import InMemorySet, SetGroup
from repro.errors import ConfigError, ObjectTooLargeError


class TestInMemorySet:
    def test_add_and_contains(self):
        s = InMemorySet(1000)
        s.add(1, 100)
        assert 1 in s
        assert s.used_bytes == 100
        assert len(s) == 1

    def test_room_check(self):
        s = InMemorySet(250)
        s.add(1, 200)
        assert not s.has_room(100)
        assert s.has_room(50)

    def test_add_without_room_rejected(self):
        s = InMemorySet(100)
        s.add(1, 100)
        with pytest.raises(ConfigError):
            s.add(2, 1)

    def test_oversized_object_rejected(self):
        s = InMemorySet(100)
        with pytest.raises(ObjectTooLargeError):
            s.add(1, 101)

    def test_duplicate_add_rejected(self):
        s = InMemorySet(1000)
        s.add(1, 10)
        with pytest.raises(ConfigError):
            s.add(1, 10)

    def test_replace_adjusts_bytes(self):
        s = InMemorySet(1000)
        s.add(1, 100)
        old = s.replace(1, 150)
        assert old == 100
        assert s.used_bytes == 150

    def test_evict_oldest_is_fifo(self):
        s = InMemorySet(1000)
        s.add(1, 10)
        s.add(2, 20)
        assert s.evict_oldest() == (1, 10)
        assert s.used_bytes == 20

    def test_remove(self):
        s = InMemorySet(1000)
        s.add(1, 10)
        assert s.remove(1) == 10
        assert s.remove(1) is None
        assert s.used_bytes == 0

    def test_fill(self):
        s = InMemorySet(200)
        s.add(1, 50)
        assert s.fill == 0.25


class TestSetGroup:
    @pytest.fixture
    def sg(self):
        return SetGroup(sg_id=0, sets_per_sg=4, set_size=1000)

    def test_capacity(self, sg):
        assert sg.capacity_bytes == 4000

    def test_insert_accounts_new_bytes(self, sg):
        assert sg.try_insert(0, 1, 300)
        assert sg.new_bytes_in == 300
        assert sg.writeback_bytes_in == 0
        assert sg.fill_rate() == pytest.approx(300 / 4000)

    def test_writeback_accounts_separately(self, sg):
        assert sg.try_insert(1, 2, 400, writeback=True)
        assert sg.new_bytes_in == 0
        assert sg.writeback_bytes_in == 400
        # WA-relevant fill excludes writeback bytes (paper §5.2).
        assert sg.new_fill_rate() == 0.0
        assert sg.fill_rate() == pytest.approx(0.1)

    def test_update_counts_full_size_as_new(self, sg):
        sg.try_insert(0, 1, 300)
        sg.try_insert(0, 1, 300)
        assert sg.new_bytes_in == 600
        assert sg.used_bytes == 300

    def test_full_set_refuses(self, sg):
        assert sg.try_insert(0, 1, 900)
        assert not sg.try_insert(0, 2, 200)
        # Other sets unaffected.
        assert sg.try_insert(1, 2, 200)

    def test_sealed_refuses(self, sg):
        sg.seal()
        assert not sg.try_insert(0, 1, 100)

    def test_evict_from_set_makes_room(self, sg):
        sg.try_insert(0, 1, 500)
        sg.try_insert(0, 2, 400)
        evicted = sg.evict_from_set(0, 600)
        assert (1, 500) in evicted
        assert sg.try_insert(0, 3, 600)

    def test_evicted_bytes_stay_in_new_accounting(self, sg):
        """The WA denominator keeps early-evicted bytes (paper §5.2)."""
        sg.try_insert(0, 1, 500)
        sg.evict_from_set(0, 1000)
        assert sg.new_bytes_in == 500

    def test_find(self, sg):
        sg.try_insert(2, 9, 123)
        assert sg.find(2, 9) == 123
        assert sg.find(2, 8) is None

    def test_page_payloads_snapshot(self, sg):
        sg.try_insert(0, 1, 100)
        payloads = sg.page_payloads()
        assert payloads[0] == {1: 100}
        payloads[0][99] = 1  # mutating the snapshot is safe
        assert sg.find(0, 99) is None

    def test_take_payloads_requires_sealed(self, sg):
        sg.try_insert(0, 1, 100)
        with pytest.raises(ConfigError):
            sg.take_payloads()

    def test_take_payloads_detaches_live_dicts(self, sg):
        """The flush handoff moves the dicts out instead of copying."""
        sg.try_insert(0, 1, 100)
        sg.try_insert(3, 7, 250)
        sg.seal()
        payloads = sg.take_payloads()
        assert payloads[0] == {1: 100}
        assert payloads[3] == {7: 250}
        # The SG's sets are reset, not aliased: the handed-off dicts
        # stay valid however the SG is reused.
        assert sg.find(0, 1) is None
        assert all(s.used_bytes == 0 for s in sg.sets)
        payloads[0][99] = 1
        assert sg.find(0, 99) is None

    def test_bad_construction(self):
        with pytest.raises(ConfigError):
            SetGroup(0, 0, 100)
        with pytest.raises(ConfigError):
            SetGroup(0, 4, 0)


@settings(max_examples=40, deadline=None)
@given(
    inserts=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 30), st.integers(1, 400)),
        max_size=120,
    )
)
def test_setgroup_byte_invariants(inserts):
    """used <= capacity per set; fill accounting never goes negative."""
    sg = SetGroup(0, 4, 1000)
    for offset, key, size in inserts:
        sg.try_insert(offset, key, size)
    assert 0 <= sg.used_bytes <= sg.capacity_bytes
    for s in sg.sets:
        assert 0 <= s.used_bytes <= s.capacity
        assert s.used_bytes == sum(s.objects.values())
    assert sg.new_bytes_in >= sg.used_bytes  # evictions/updates only add
