"""Unit tests for the buffered in-memory SG circle queue."""

import pytest

from repro.core.sgqueue import SetGroupQueue
from repro.errors import ConfigError


@pytest.fixture
def queue():
    return SetGroupQueue(depth=2, sets_per_sg=4, set_size=1000)


class TestPlacement:
    def test_prefers_front(self, queue):
        assert queue.try_insert(0, 1, 100)
        assert queue.front.find(0, 1) == 100
        assert queue.rear.find(0, 1) is None

    def test_overflows_to_rear(self, queue):
        queue.try_insert(0, 1, 900)  # front set 0 nearly full
        assert queue.try_insert(0, 2, 500)
        assert queue.rear.find(0, 2) == 500

    def test_blocked_when_all_full(self, queue):
        assert queue.try_insert(0, 1, 1000)
        assert queue.try_insert(0, 2, 1000)
        assert not queue.try_insert(0, 3, 500)

    def test_update_in_place_wherever_resident(self, queue):
        queue.try_insert(0, 1, 900)
        queue.try_insert(0, 2, 800)  # lands in the rear
        assert queue.try_insert(0, 2, 850)  # update, still in the rear
        assert queue.rear.find(0, 2) == 850
        assert queue.front.find(0, 2) is None

    def test_find_searches_all(self, queue):
        queue.try_insert(1, 5, 100)
        assert queue.find(1, 5) == 100
        assert queue.find(1, 6) is None

    def test_remove(self, queue):
        queue.try_insert(1, 5, 100)
        assert queue.remove(1, 5)
        assert not queue.remove(1, 5)
        assert queue.find(1, 5) is None


class TestRotation:
    def test_pop_front_seals_and_replenishes(self, queue):
        first = queue.front
        popped = queue.pop_front_for_flush()
        assert popped is first
        assert popped.sealed
        assert len(queue) == 2
        assert queue.front is not first

    def test_sg_ids_monotonic(self, queue):
        ids = [queue.pop_front_for_flush().sg_id for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_counters(self, queue):
        queue.try_insert(0, 1, 100)
        queue.try_insert(1, 2, 200)
        assert queue.object_count() == 2
        assert queue.used_bytes() == 300

    def test_depth_one_behaves(self):
        q = SetGroupQueue(depth=1, sets_per_sg=2, set_size=100)
        assert q.try_insert(0, 1, 100)
        assert not q.try_insert(0, 2, 100)

    def test_bad_depth(self):
        with pytest.raises(ConfigError):
            SetGroupQueue(depth=0, sets_per_sg=2, set_size=100)
