"""Unit tests for experiment helper functions (no full replays)."""

import numpy as np
import pytest

from repro.experiments.fig14_wa_trend import _first_knee
from repro.experiments.fig19_pbfg import set_access_top_share
from repro.experiments.fig12_wa_main import PAPER_WA, build_engines
from repro.experiments.fig17_sg_breakdown import PAPER_FILL, variant_configs
from repro.experiments.common import small_geometry


class TestFirstKnee:
    def test_finds_crossing(self):
        series = [(100, 1.0), (200, 1.5), (300, 2.5), (400, 6.0)]
        assert _first_knee(series, threshold=2.0) == 300

    def test_no_crossing_is_nan(self):
        series = [(100, 1.0), (200, 1.2)]
        assert np.isnan(_first_knee(series))

    def test_skips_nan_samples(self):
        series = [(100, float("nan")), (200, 3.0)]
        assert _first_knee(series) == 200


class TestSetAccessShare:
    def test_uniform_keys_give_top_fraction(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**60, size=200_000)
        share = set_access_top_share(keys, num_offsets=256, top_fraction=0.3)
        assert share == pytest.approx(0.3, abs=0.03)

    def test_skewed_keys_concentrate(self):
        # 80 % of accesses from 100 keys: heavy offset concentration.
        rng = np.random.default_rng(1)
        hot = rng.integers(0, 100, size=80_000)
        cold = rng.integers(0, 2**60, size=20_000)
        keys = np.concatenate([hot, cold])
        share = set_access_top_share(keys, num_offsets=256, top_fraction=0.3)
        assert share > 0.6


class TestExperimentTables:
    def test_fig12_engines_cover_table4(self):
        engines = build_engines(small_geometry())
        assert [e.name for e in engines] == ["Log", "Set", "FW", "KG", "Nemo"]
        assert set(PAPER_WA) == {e.name for e in engines}

    def test_fig17_variant_grid(self):
        names = [name for name, _ in variant_configs()]
        assert names == ["naive", "B", "P", "B+P", "B+P+W"]
        assert set(PAPER_FILL) == set(names)
        for name, cfg in variant_configs():
            assert cfg.enable_writeback == (name == "B+P+W")
