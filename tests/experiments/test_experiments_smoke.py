"""Smoke tests: every registered experiment runs end-to-end at micro
scale and produces a well-formed, formatted result.

Shape assertions here are deliberately loose — the EXPERIMENTS.md runs
use larger scales — but each experiment's *headline relation* is still
checked where it is robust even at micro scale.
"""

import math

import pytest

from repro.experiments import EXPERIMENTS, run_experiment


@pytest.fixture(scope="module")
def results():
    return {exp_id: run_experiment(exp_id, scale="micro") for exp_id in EXPERIMENTS}


class TestAllRunAndFormat:
    def test_every_experiment_formats(self, results):
        for exp_id, result in results.items():
            text = result.format()
            assert isinstance(text, str) and len(text) > 40, exp_id


class TestHeadlineShapes:
    def test_fig04_l2swa_positive(self, results):
        rows = results["fig04"].rows
        steady = [r for r in rows if r["phase"] == "steady"]
        assert steady
        for r in steady:
            assert r["l2swa_p_measured"] > 1.0
            assert r["l2swa_p_model"] > 1.0

    def test_fig05_reports_both_paths(self, results):
        for r in results["fig05"].rows:
            assert r["mean_passive"] > 0

    def test_fig06_p_in_range(self, results):
        for op, p in results["fig06"].final_p.items():
            assert 0.0 <= p <= 1.0 or math.isnan(p), op

    def test_fig06_more_op_means_more_passive(self, results):
        p = results["fig06"].final_p
        assert p[0.50] >= p[0.05] - 0.05

    def test_fig08_skew_below_one(self, results):
        for r in results["fig08"].rows:
            assert 0.0 < r["remaining_fill"] < 1.0
            assert 0.0 < r["model_fill"] < 1.0

    def test_fig08_more_sets_lower_fill(self, results):
        rows = results["fig08"].rows
        by_key = {
            (r["workload"], r["num_sets"], r["set_size"]): r["remaining_fill"]
            for r in rows
        }
        assert by_key[("synthetic", 1024, 4096)] < by_key[("synthetic", 256, 4096)] + 0.1

    def test_fig12_nemo_beats_fw(self, results):
        wa = {r["engine"]: r["wa"] for r in results["fig12"].main_rows}
        assert wa["Nemo"] < wa["FW"]
        assert wa["FW"] < wa["KG"]
        assert wa["Log"] < 2.0

    def test_fig12_variants_present(self, results):
        configs = {r["config"] for r in results["fig12"].variant_rows}
        assert {"FW Log20-OP5", "FW Log5-OP50", "Nemo"} <= configs

    def test_fig13_nemo_writes_less(self, results):
        rows = {r["engine"]: r for r in results["fig13"].rows}
        assert rows["Nemo"]["mean_mib_per_min"] <= rows["FW"]["mean_mib_per_min"]

    def test_fig14_series_collected(self, results):
        assert set(results["fig14"].wa_series) == {
            "Nemo",
            "FW Log5-OP5",
            "FW Log20-OP5",
            "FW Log5-OP50",
        }
        for series in results["fig14"].wa_series.values():
            assert len(series) > 10

    def test_fig15_percentiles_ordered(self, results):
        for name, w in results["fig15"].windows.items():
            for phase in ("before", "after"):
                p = w[phase]
                assert p[50.0] <= p[99.0] <= p[99.99], (name, phase)

    def test_fig16_misses_comparable(self, results):
        final = results["fig16"].final_miss
        assert abs(final["Nemo"] - final["FW"]) < 0.25

    def test_fig17_ordering(self, results):
        fills = {r["variant"]: r["fill"] for r in results["fig17"].rows}
        assert fills["naive"] < fills["B+P"]
        assert fills["naive"] < fills["B"]
        assert fills["naive"] < fills["P"]
        assert fills["B+P+W"] >= fills["B+P"] - 0.02

    def test_fig18_wa_decreases_with_threshold(self, results):
        rows = results["fig18"].rows
        wa_by_pth = {r["pth"]: r["wa"] for r in rows}
        assert wa_by_pth[4096] < wa_by_pth[1]

    def test_fig19a_skew_survives_hashing(self, results):
        for cluster, share in results["fig19"].top30_share.items():
            assert share > 0.35, cluster  # well above the uniform 0.30

    def test_fig19b_monotone_in_cached_ratio(self, results):
        ratios = results["fig19"].pool_ratio
        assert ratios[1.0] <= ratios[0.1] + 1e-9

    def test_table6_matches_paper(self, results):
        analytic = results["table6"].analytic
        assert analytic["FairyWREN"] == pytest.approx(9.9, abs=0.1)
        assert analytic["naive Nemo"] == pytest.approx(30.4, abs=0.1)
        assert analytic["Nemo"] == pytest.approx(8.3, abs=0.1)

    def test_appendix_paper_example(self, results):
        rows = {r["fp"]: r for r in results["appendixA"].rows}
        assert rows[0.001]["index_pages"] == 7
        assert rows[0.0001]["index_pages"] == 9
        assert rows[0.0001]["total"] > rows[0.001]["total"]
