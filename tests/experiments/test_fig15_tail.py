"""Acceptance tests for the closed-loop tail experiment (fig15_tail).

The paper's §5.2 claim, restated for the bursty closed-loop scenario:
FairyWREN's continuous small RMW writes inflate the GET sojourn tails
(p99/p9999) while Nemo's occasional batched SG flushes leave them
stable.  The micro cell must reproduce that ordering — this is the
ISSUE's CI-asserted acceptance criterion for the event device lane.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig15_tail import CLASS_NAMES, SYSTEMS, run


@pytest.fixture(scope="module")
def result():
    return run(scale="micro")


class TestFig15Tail:
    def test_reports_every_system_class_and_window(self, result):
        assert set(result.windows) == set(SYSTEMS)
        for classes in result.windows.values():
            assert set(classes) == set(CLASS_NAMES)
            for windows in classes.values():
                assert set(windows) == {"before", "after"}
                for percentiles in windows.values():
                    assert set(percentiles) == {50.0, 99.0, 99.99}

    def test_fw_tails_above_nemo_everywhere(self, result):
        """The paper ordering: FW's p99/p9999 exceed Nemo's in every
        class and window of the bursty closed-loop scenario."""
        for cls in CLASS_NAMES:
            for phase in ("before", "after"):
                for q in (99.0, 99.99):
                    fw = result.windows["FW"][cls][phase][q]
                    nemo = result.windows["Nemo"][cls][phase][q]
                    assert fw > nemo, (cls, phase, q, fw, nemo)

    def test_nemo_tails_stable_across_the_flash_full_point(self, result):
        """Nemo's tails stay the same order of magnitude before and
        after the flash fills (FW's erraticness is the contrast, pinned
        by the ordering test; this guards Nemo's absolute stability)."""
        for cls in CLASS_NAMES:
            before = result.windows["Nemo"][cls]["before"]
            after = result.windows["Nemo"][cls]["after"]
            for q in (99.0, 99.99):
                assert after[q] <= 3.0 * before[q], (cls, q, before, after)

    def test_interactive_class_is_served_first_under_load(self, result):
        """Priority issue order: in the contended after-window (where
        queueing, not raw service, sets the tails) the interactive
        tier's p99/p9999 never exceed the batch tier's.  The light-load
        before-window shows no separation — priority only matters when
        requests actually queue."""
        for name in SYSTEMS:
            for q in (99.0, 99.99):
                interactive = result.windows[name]["interactive"]["after"][q]
                batch = result.windows[name]["batch"]["after"][q]
                assert interactive <= batch, (name, q, interactive, batch)

    def test_format_is_a_full_table(self, result):
        out = result.format()
        assert "closed-loop GET sojourn" in out
        for name in SYSTEMS:
            assert name in out
        for cls in CLASS_NAMES:
            assert cls in out
