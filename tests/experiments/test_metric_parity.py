"""Byte-identity regression tests for the experiment datapath.

The engine-datapath optimisations (bucket-indexed GC, array-backed FTL
tables, marker payloads, batched relocation) must not perturb a single
metric: every fig12 cell (all five engines — the KG cell exercises the
batched GC relocation path — plus both FW variants) and every fig14
cell is compared against ``golden_metrics_micro.json``, recorded from
the pre-optimisation code, with exact float equality.

The replay *kernel* sweep replays the fig12/fig14/fig15 micro cells on
the columnar and scalar lanes (via the ``REPRO_REPLAY_KERNEL``
override) against the **same** golden file — all three lanes must be
byte-identical, not merely self-consistent.

Regenerate the golden file (only after an *intentional* metric change)::

    PYTHONPATH=src python tests/experiments/test_metric_parity.py --regen
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).parent / "golden_metrics_micro.json"

_ALL_FIGS = ("fig12", "fig14", "fig15", "fig16")

#: Figures the kernel sweep replays on every lane (fig16 rides on the
#: same datapath as fig12's sampled series; the sweep trades it for
#: suite wall-clock).
_SWEEP_FIGS = ("fig12", "fig14", "fig15")


def _compute_cells(figs: tuple[str, ...] = _ALL_FIGS) -> dict:
    from repro.experiments import fig12_wa_main as f12
    from repro.experiments import fig14_wa_trend as f14
    from repro.experiments import fig15_read_latency as f15
    from repro.experiments import fig16_miss_ratio as f16

    out: dict = {}
    if "fig12" in figs:
        fig12 = [
            f12._main_cell("micro", i) for i in range(len(f12.PAPER_WA))
        ]
        fig12 += [
            f12._variant_cell("micro", label, kw["log_fraction"], kw["op_ratio"])
            for label, kw in f12.VARIANTS
        ]
        out["fig12"] = fig12
    if "fig14" in figs:
        out["fig14"] = [
            f14._system_cell("micro", name, log_fraction, op_ratio)
            for name, log_fraction, op_ratio in f14.SYSTEMS
        ]
    # fig15 exercises the latency-model datapath (record_latency +
    # window percentiles); fig16 the sampled-series datapath.
    if "fig15" in figs:
        out["fig15"] = [f15._system_cell("micro", name) for name in f15.SYSTEMS]
    if "fig16" in figs:
        out["fig16"] = [f16._system_cell("micro", name) for name in f16.SYSTEMS]
    # Round-trip through JSON so tuples/lists and int/float widths
    # compare on equal footing with the stored golden file.
    return json.loads(json.dumps(out))


def _compute_cells_with_kernel(kernel: str, figs: tuple[str, ...]) -> dict:
    from repro.harness.runner import KERNEL_ENV_VAR

    prior = os.environ.get(KERNEL_ENV_VAR)
    os.environ[KERNEL_ENV_VAR] = kernel
    try:
        return _compute_cells(figs)
    finally:
        if prior is None:
            del os.environ[KERNEL_ENV_VAR]
        else:
            os.environ[KERNEL_ENV_VAR] = prior


def _assert_identical(new, golden, path=""):
    if isinstance(golden, dict):
        assert isinstance(new, dict) and set(new) == set(golden), path
        for key in golden:
            _assert_identical(new[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert isinstance(new, list) and len(new) == len(golden), path
        for i, (a, b) in enumerate(zip(new, golden)):
            _assert_identical(a, b, f"{path}[{i}]")
    elif isinstance(golden, float) and isinstance(new, float):
        assert (new == golden) or (
            math.isnan(new) and math.isnan(golden)
        ), f"{path}: {new!r} != {golden!r}"
    else:
        assert new == golden, f"{path}: {new!r} != {golden!r}"


@pytest.fixture(scope="module")
def cells():
    return _compute_cells()


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


class TestMetricParity:
    def test_fig12_cells_byte_identical(self, cells, golden):
        _assert_identical(cells["fig12"], golden["fig12"], "fig12")

    def test_fig12_covers_kg(self, golden):
        from repro.experiments import fig12_wa_main as f12

        engines = list(f12.PAPER_WA)
        assert "KG" in engines
        assert len(golden["fig12"]) == len(engines) + len(f12.VARIANTS)

    def test_fig14_cells_byte_identical(self, cells, golden):
        _assert_identical(cells["fig14"], golden["fig14"], "fig14")

    def test_fig15_cells_byte_identical(self, cells, golden):
        _assert_identical(cells["fig15"], golden["fig15"], "fig15")

    def test_fig16_cells_byte_identical(self, cells, golden):
        _assert_identical(cells["fig16"], golden["fig16"], "fig16")


@pytest.fixture(scope="module", params=["columnar", "scalar"])
def kernel_cells(request):
    return request.param, _compute_cells_with_kernel(
        request.param, _SWEEP_FIGS
    )


class TestKernelSweep:
    """Columnar and scalar lanes reproduce the batched-lane goldens.

    The golden file was recorded on the batched lane, so passing here
    proves three-way byte identity on every fig12/fig14/fig15 micro
    cell — not just that each lane is internally stable.  On the
    columnar lane the Log *and* Nemo cells dispatch to their
    whole-trace kernels (``KERNEL_REGISTRY``), so the sweep's Nemo
    rows are the Nemo kernel's golden-metric gate.
    """

    @pytest.mark.parametrize("fig", _SWEEP_FIGS)
    def test_lane_matches_golden(self, kernel_cells, golden, fig):
        kernel, cells = kernel_cells
        _assert_identical(cells[fig], golden[fig], f"{kernel}:{fig}")

    def test_columnar_lane_engages_nemo_kernel(self, monkeypatch, golden):
        """Guard against the sweep going vacuous: the fig12 Nemo micro
        cell on the columnar lane must actually run the whole-trace
        Nemo kernel (not silently fall back to batched dispatch) and
        still match its golden row."""
        import dataclasses

        import repro.harness.columnar as columnar
        from repro.core.nemo import NemoCache
        from repro.experiments import fig12_wa_main as f12
        from repro.harness.runner import KERNEL_ENV_VAR

        spec = columnar.KERNEL_REGISTRY[NemoCache]
        hits: list[int] = []

        def counted(engine, trace, **kwargs):
            hits.append(len(trace))
            return spec.replay(engine, trace, **kwargs)

        monkeypatch.setitem(
            columnar.KERNEL_REGISTRY,
            NemoCache,
            dataclasses.replace(spec, replay=counted),
        )
        monkeypatch.setenv(KERNEL_ENV_VAR, "columnar")
        nemo_index = list(f12.PAPER_WA).index("Nemo")
        cell = json.loads(
            json.dumps(f12._main_cell("micro", nemo_index))
        )
        assert len(hits) == 1
        _assert_identical(
            cell, golden["fig12"][nemo_index], "columnar:fig12:Nemo"
        )


def _lane_parity_configs():
    """(label, engine builder) for every fig12/fig14/fig15 micro system."""
    from repro.baselines.fairywren import FairyWrenCache
    from repro.experiments import fig12_wa_main as f12
    from repro.experiments import fig14_wa_trend as f14
    from repro.experiments import fig15_read_latency as f15
    from repro.flash.latency import LatencyModel

    configs = [
        (f"fig12/{name}", lambda g, i=i: f12.build_engines(g)[i])
        for i, name in enumerate(f12.PAPER_WA)
    ]
    configs += [
        (
            f"fig14/{name}",
            lambda g, lf=lf, op=op: FairyWrenCache(
                g, log_fraction=lf, op_ratio=op
            ),
        )
        for name, lf, op in f14.SYSTEMS
        if lf is not None  # fig14's Nemo row is fig12's Nemo engine
    ]
    configs += [
        (
            f"fig15/{name}",
            lambda g, name=name: f15._build_system(
                name, g, LatencyModel(num_channels=8)
            ),
        )
        for name in f15.SYSTEMS
    ]
    return configs


_LANE_PARITY_CONFIGS = _lane_parity_configs()


class TestLatencyLaneParity:
    """The event device lane is counter-invariant on the experiment
    cells (DESIGN.md §9 parity contract): replaying every fig12 / fig14
    / fig15 micro configuration with ``latency_lane="event"`` must
    yield the analytic lane's final snapshot exactly — WA, miss ratio
    and op counts included.  The devsim property suite covers random
    traces; this pins the exact paper configurations CI reports.
    """

    @pytest.mark.parametrize(
        "label, build",
        _LANE_PARITY_CONFIGS,
        ids=[label for label, _ in _LANE_PARITY_CONFIGS],
    )
    def test_event_lane_matches_analytic_counters(self, label, build):
        from repro.experiments.common import scale_params, twitter_trace
        from repro.harness.runner import replay

        geometry, num_requests = scale_params("micro")
        trace = twitter_trace(num_requests)
        finals = {}
        for lane in ("analytic", "event"):
            result = replay(build(geometry), trace, latency_lane=lane)
            assert result.latency_lane == lane
            finals[lane] = json.loads(json.dumps(result.final))
        _assert_identical(finals["event"], finals["analytic"], label)


def main() -> None:
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--regen", action="store_true", help="rewrite the golden file"
    )
    args = parser.parse_args()
    if not args.regen:
        parser.error("nothing to do; pass --regen to rewrite the golden file")
    GOLDEN_PATH.write_text(json.dumps(_compute_cells(), indent=1) + "\n")
    sys.stdout.write(f"wrote {GOLDEN_PATH}\n")


if __name__ == "__main__":
    main()
