"""tools/regen_goldens.py must round-trip the golden file on a clean tree.

If this fails, either the datapath drifted (a parity test should be
failing too) or the tool's serialization no longer matches the stored
format — both mean "regenerating goldens" would sneak a diff into the
tree.
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TOOL = REPO_ROOT / "tools" / "regen_goldens.py"
GOLDEN = Path(__file__).parent / "golden_metrics_micro.json"


def load_tool():
    spec = importlib.util.spec_from_file_location("regen_goldens", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_clean_tree_round_trips_byte_identical():
    tool = load_tool()
    assert tool.golden_path() == GOLDEN
    assert tool.render(tool.compute_cells()) == GOLDEN.read_text()


def test_check_mode_exit_codes(tmp_path, monkeypatch, capsys):
    tool = load_tool()
    cells = json.loads(GOLDEN.read_text())
    monkeypatch.setattr(tool, "compute_cells", lambda: cells)

    target = tmp_path / "golden.json"
    assert tool.main(["--check", "--output", str(target)]) == 1  # missing

    assert tool.main(["--output", str(target)]) == 0
    assert target.read_text() == GOLDEN.read_text()
    assert tool.main(["--check", "--output", str(target)]) == 0

    target.write_text("{}\n")
    assert tool.main(["--check", "--output", str(target)]) == 1  # stale
    out = capsys.readouterr().out
    assert "STALE" in out
