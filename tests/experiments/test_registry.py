"""Unit tests for the experiment registry and CLI."""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment
from repro.experiments.__main__ import main as cli_main
from repro.experiments.common import geometry, nemo_config, scale_params, twitter_trace


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig04",
            "fig05",
            "fig06",
            "fig08",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig15_tail",
            "fig16",
            "fig17",
            "fig18",
            "fig19",
            "table6",
            "appendixA",
            "cluster",
        }
        assert set(EXPERIMENTS) == expected

    def test_get_experiment_resolves(self):
        exp = get_experiment("appendixA")
        assert callable(exp.run)
        assert exp.description

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")


class TestCommonConfig:
    def test_geometry_zones(self):
        assert geometry(8).num_zones == 8

    def test_scale_params(self):
        geo, n = scale_params("small")
        assert geo.num_zones > 0 and n > 0
        with pytest.raises(ValueError):
            scale_params("huge")

    def test_trace_memoised(self):
        a = twitter_trace(4000)
        b = twitter_trace(4000)
        assert a is b

    def test_nemo_config_overrides(self):
        cfg = nemo_config(cached_index_ratio=0.25)
        assert cfg.cached_index_ratio == 0.25
        assert cfg.flush_threshold == 8


class TestCLI:
    def test_list_mode(self, capsys):
        assert cli_main([]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out

    def test_run_analytic_experiment(self, capsys):
        assert cli_main(["appendixA"]) == 0
        out = capsys.readouterr().out
        assert "Appendix A" in out
