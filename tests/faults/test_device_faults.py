"""NAND-level fault injection: retries, rescue, retirement, end-of-life."""

import pytest

from repro.errors import DeviceRetiredError, UncorrectableReadError
from repro.faults.plan import FaultConfig, FaultPlan
from repro.flash.device import NandArray
from repro.flash.geometry import FlashGeometry
from repro.flash.stats import FlashStats


def make_nand(**fault_kwargs):
    geo = FlashGeometry(
        page_size=4096, pages_per_block=4, num_blocks=8, blocks_per_zone=1
    )
    nand = NandArray(geo)
    stats = FlashStats()
    if fault_kwargs:
        nand.install_fault_plan(FaultPlan(FaultConfig(**fault_kwargs)), stats)
    return nand, stats


class TestReadFaults:
    def test_transient_read_retries_then_ecc_rescue(self):
        nand, stats = make_nand(read_error_rate=1.0, max_read_retries=3)
        nand.program(0, "payload")
        assert nand.read(0) == "payload"  # rescue still returns the data
        fc = stats.fault_snapshot()
        assert fc["read_retries"] == 3
        assert fc["ecc_rescued_reads"] == 1
        # Each retry is an extra physical read: 1 + 3 retries.
        assert nand.read_count == 4

    def test_fatal_read_failures_raise(self):
        nand, _ = make_nand(
            read_error_rate=1.0, max_read_retries=2, read_failures_fatal=True
        )
        nand.program(0, "payload")
        with pytest.raises(UncorrectableReadError):
            nand.read(0)

    def test_read_pages_runs_fault_loop_per_page(self):
        nand, stats = make_nand(read_error_rate=1.0, max_read_retries=1)
        for page in range(3):
            nand.program(page, page)
        nand.read_pages([0, 1, 2])
        fc = stats.fault_snapshot()
        assert fc["read_retries"] == 3
        assert fc["ecc_rescued_reads"] == 3

    def test_retry_traffic_counted_as_read_bytes(self):
        nand, stats = make_nand(read_error_rate=1.0, max_read_retries=2)
        nand.program(0, "x")
        before = stats.flash_read_bytes
        nand.read(0)
        assert stats.flash_read_bytes - before == 2 * nand.geometry.page_size


class TestProgramFaults:
    def test_program_failure_retires_block_but_write_lands(self):
        nand, stats = make_nand(program_error_rate=1.0, spare_blocks=4)
        nand.program(0, "payload")
        assert nand.read(0) == "payload"  # spare substituted transparently
        fc = stats.fault_snapshot()
        assert fc["program_failures"] == 1
        assert fc["blocks_retired"] == 1
        assert nand.retired_blocks == [0]
        assert nand.spare_blocks_remaining == 3
        # The failed attempt burned a program cycle too.
        assert nand.program_count == 2

    def test_spare_exhaustion_is_end_of_life(self):
        nand, _ = make_nand(program_error_rate=1.0, spare_blocks=2)
        nand.program(0, "a")
        nand.program(1, "b")
        with pytest.raises(DeviceRetiredError):
            nand.program(2, "c")


class TestEraseFaults:
    def test_erase_failure_retires_block_then_succeeds(self):
        nand, stats = make_nand(erase_error_rate=1.0, spare_blocks=4)
        nand.program(0, "x")
        nand.erase_block(0)
        assert not nand.is_programmed(0)  # erase completed on the spare
        fc = stats.fault_snapshot()
        assert fc["erase_failures"] == 1
        assert fc["blocks_retired"] == 1

    def test_erase_zone_checks_each_member_block(self):
        geo = FlashGeometry(
            page_size=4096, pages_per_block=4, num_blocks=8, blocks_per_zone=4
        )
        nand = NandArray(geo)
        stats = FlashStats()
        nand.install_fault_plan(
            FaultPlan(FaultConfig(erase_error_rate=1.0, spare_blocks=16)), stats
        )
        nand.erase_zone(0)
        assert stats.fault_snapshot()["erase_failures"] == 4


class TestInertPaths:
    def test_no_plan_means_no_fault_state(self):
        nand, stats = make_nand()
        assert nand.fault_plan is None
        nand.program(0, "x")
        assert nand.read(0) == "x"
        nand.erase_block(0)
        assert all(v == 0 for v in stats.fault_snapshot().values())

    def test_empty_plan_changes_nothing_but_arms_spares(self):
        nand, stats = make_nand(spare_blocks=5)
        assert nand.fault_plan is not None
        assert nand.spare_blocks_remaining == 5
        nand.program(0, "x")
        assert nand.read(0) == "x"
        assert nand.read_count == 1
        assert all(v == 0 for v in stats.fault_snapshot().values())

    def test_uninstall_resets(self):
        nand, _ = make_nand(read_error_rate=1.0)
        nand.install_fault_plan(None)
        assert nand.fault_plan is None
        assert nand.spare_blocks_remaining == 0

    def test_metric_snapshot_excludes_fault_counters(self):
        """Fault counters live in fault_snapshot(), never in snapshot(),
        so golden metric files are untouched by the fault layer."""
        _, stats = make_nand(read_error_rate=1.0)
        assert set(stats.snapshot()).isdisjoint(stats.fault_snapshot())
