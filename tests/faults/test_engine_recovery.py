"""Per-engine crash/recovery: scan-rebuild correctness for every engine.

Drives each engine through a mixed workload, crashes it (dropping all
DRAM state), recovers from the flash scan, and checks:

- nothing deleted or never-inserted is served afterwards (no
  resurrection — deletes are synchronously durable),
- the recovered object count never exceeds the pre-crash count (a crash
  can only lose DRAM-buffered objects), and
- the engine keeps operating normally after recovery.
"""

import random

import pytest

from repro.baselines.base import CacheEngine, LookupResult
from repro.baselines.fairywren import FairyWrenCache
from repro.baselines.kangaroo import KangarooCache
from repro.baselines.log_structured import LogStructuredCache
from repro.baselines.set_associative import SetAssociativeCache
from repro.core.config import NemoConfig
from repro.core.nemo import NemoCache
from repro.errors import EngineStateError
from repro.flash.geometry import FlashGeometry


def geometry():
    return FlashGeometry(
        page_size=4096, pages_per_block=16, num_blocks=16, blocks_per_zone=2
    )


ENGINE_FACTORIES = {
    "log": lambda: LogStructuredCache(geometry()),
    "set": lambda: SetAssociativeCache(geometry(), op_ratio=0.5),
    "fw": lambda: FairyWrenCache(geometry(), log_fraction=0.1, op_ratio=0.1),
    "kg": lambda: KangarooCache(geometry(), log_fraction=0.1, op_ratio=0.1),
    "nemo": lambda: NemoCache(
        geometry(),
        NemoConfig(flush_threshold=4, sgs_per_index_group=2, bf_capacity_per_set=20),
    ),
    "nemo-real-filters": lambda: NemoCache(
        geometry(),
        NemoConfig(
            flush_threshold=4,
            sgs_per_index_group=2,
            bf_capacity_per_set=20,
            use_real_filters=True,
        ),
    ),
}


def drive(engine, *, ops, key_space, seed=7):
    """Mixed GET/SET/DELETE workload; returns the live-key model."""
    rng = random.Random(seed)
    live = {}
    for _ in range(ops):
        op = rng.random()
        key = rng.randrange(key_space)
        size = rng.randrange(80, 400)
        if op < 0.55:
            if not engine.lookup(key, size).hit:
                engine.insert(key, size)
                live[key] = size
        elif op < 0.9:
            engine.insert(key, size)
            live[key] = size
        else:
            engine.delete(key)
            live.pop(key, None)
    return live


@pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
def test_crash_recover_no_resurrection(name):
    engine = ENGINE_FACTORIES[name]()
    # Nemo needs enough churn to flush SGs to the on-flash pool; the
    # flat baselines exercise their reclaim paths with much less.
    if name.startswith("nemo"):
        ops, key_space = 25_000, 4_000
    else:
        ops, key_space = 4_000, 600
    live = drive(engine, ops=ops, key_space=key_space)

    before = engine.object_count()
    engine.crash()
    engine.recover()
    after = engine.object_count()
    assert after <= before  # a crash only ever loses objects
    assert after > 0  # ... but durable state did survive

    resurrected = [
        key
        for key in range(key_space)
        if engine.lookup(key, 100).hit and key not in live
    ]
    assert resurrected == [], f"{name} resurrected {resurrected[:10]}"

    # The recovered engine keeps serving and admitting.
    rng = random.Random(99)
    for _ in range(2_000):
        key = rng.randrange(key_space)
        size = rng.randrange(80, 400)
        if not engine.lookup(key, size).hit:
            engine.insert(key, size)
    assert engine.object_count() > 0


@pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
def test_recovered_hits_only_durable_keys(name):
    """Keys never inserted must stay misses after an early crash."""
    engine = ENGINE_FACTORIES[name]()
    for key in range(0, 400, 2):  # even keys only
        engine.insert(key, 120)
    engine.crash()
    engine.recover()
    for key in range(1, 400, 2):
        assert not engine.lookup(key, 120).hit


def test_nemo_pool_survives_crash():
    engine = ENGINE_FACTORIES["nemo"]()
    drive(engine, ops=25_000, key_space=4_000)
    pool_before = [fsg.sg_id for fsg in engine.pool]
    assert pool_before  # the workload must have flushed SGs
    engine.crash()
    engine.recover()
    assert [fsg.sg_id for fsg in engine.pool] == pool_before


def test_crash_without_recover_refuses_default():
    """Engines without a recovery story must not silently survive."""

    class Bare(CacheEngine):
        name = "bare"

        def lookup(self, key, size, now_us=0.0):
            return LookupResult(hit=False)

        def insert(self, key, size, now_us=0.0):
            pass

        def object_count(self):
            return 0

        def memory_overhead_bits_per_object(self):
            return 0.0

    engine = Bare()
    with pytest.raises(EngineStateError):
        engine.crash()
    with pytest.raises(EngineStateError):
        engine.recover()
