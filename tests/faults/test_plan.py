"""FaultPlan / FaultConfig unit tests: determinism and the no-draw rule."""

import pytest

from repro.errors import ConfigError
from repro.faults.plan import FaultConfig, FaultPlan


class TestFaultConfig:
    def test_defaults_are_inert(self):
        cfg = FaultConfig()
        cfg.validate()
        plan = FaultPlan(cfg)
        assert plan.is_empty
        assert not plan.is_device_faulty

    @pytest.mark.parametrize(
        "field", ["read_error_rate", "program_error_rate", "erase_error_rate"]
    )
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_bounded(self, field, bad):
        with pytest.raises(ConfigError):
            FaultPlan(FaultConfig(**{field: bad}))

    def test_negative_knobs_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(FaultConfig(max_read_retries=-1))
        with pytest.raises(ConfigError):
            FaultPlan(FaultConfig(spare_blocks=-1))
        with pytest.raises(ConfigError):
            FaultPlan(FaultConfig(crash_at=(100, -5)))


class TestFaultPlan:
    def test_crash_points_sorted_deduped(self):
        plan = FaultPlan(FaultConfig(crash_at=(30, 10, 30, 20)))
        assert plan.crash_points == (10, 20, 30)
        assert not plan.is_device_faulty  # crashes alone are not device faults
        assert not plan.is_empty

    def test_none_constructor(self):
        assert FaultPlan.none().is_empty

    def test_deterministic_across_instances(self):
        a = FaultPlan(FaultConfig(seed=42, read_error_rate=0.5))
        b = FaultPlan(FaultConfig(seed=42, read_error_rate=0.5))
        assert [a.should_fail_read() for _ in range(200)] == [
            b.should_fail_read() for _ in range(200)
        ]

    def test_seed_changes_stream(self):
        a = FaultPlan(FaultConfig(seed=1, read_error_rate=0.5))
        b = FaultPlan(FaultConfig(seed=2, read_error_rate=0.5))
        assert [a.should_fail_read() for _ in range(200)] != [
            b.should_fail_read() for _ in range(200)
        ]

    def test_zero_rates_never_draw(self):
        """The byte-identity contract: zero-rate checks are RNG-free."""
        plan = FaultPlan(FaultConfig(seed=7))
        before = plan._rng.getstate()
        for _ in range(100):
            assert not plan.should_fail_read()
            assert not plan.should_fail_program()
            assert not plan.should_fail_erase()
        assert plan._rng.getstate() == before

    def test_mixed_rates_draw_only_enabled_classes(self):
        """A zero-rate class must not consume draws meant for others."""
        only_read = FaultPlan(FaultConfig(seed=3, read_error_rate=0.5))
        mixed = FaultPlan(FaultConfig(seed=3, read_error_rate=0.5))
        seq = []
        for _ in range(100):
            assert not mixed.should_fail_program()  # zero rate: no draw
            seq.append(mixed.should_fail_read())
        assert seq == [only_read.should_fail_read() for _ in range(100)]

    def test_always_fail_rates(self):
        plan = FaultPlan(
            FaultConfig(read_error_rate=1.0, program_error_rate=1.0, erase_error_rate=1.0)
        )
        assert plan.should_fail_read()
        assert plan.should_fail_program()
        assert plan.should_fail_erase()
