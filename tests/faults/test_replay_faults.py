"""Replay-level fault integration: byte-identity, crashes, fault sweeps."""

import math

import pytest

from repro.cli import ENGINE_NAMES, build_engine
from repro.faults.plan import FaultConfig, FaultPlan
from repro.flash.geometry import FlashGeometry
from repro.harness.runner import replay

from tests.conftest import cached_twitter_trace


def make_engine(name):
    import argparse

    geometry = FlashGeometry(
        page_size=4096, pages_per_block=16, num_blocks=16, blocks_per_zone=2
    )
    args = argparse.Namespace(
        flush_threshold=4, sgs_per_index_group=2, cached_index_ratio=0.5
    )
    return build_engine(name, geometry, args)


def trace():
    return cached_twitter_trace(8_000, 1.0 / 4096)


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_empty_plan_is_byte_identical(name):
    """The hard invariant: faults=FaultPlan.none() == faults=None, exactly."""
    t = trace()
    baseline = replay(make_engine(name), t)
    armed = replay(make_engine(name), t, faults=FaultPlan.none())
    assert armed.final == baseline.final  # exact float equality, on purpose
    for metric, series in baseline.series.items():
        assert armed.series[metric].values == series.values
    assert baseline.fault_counters is None
    assert armed.fault_counters is not None
    assert all(v == 0 for v in armed.fault_counters.values())
    assert armed.crashes == 0


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_crash_points_mid_replay(name):
    t = trace()
    engine = make_engine(name)
    plan = FaultPlan(FaultConfig(crash_at=(2_000, 5_000)))
    result = replay(engine, t, faults=plan)
    assert result.crashes == 2
    assert result.num_requests == len(t)
    assert 0.0 <= result.miss_ratio <= 1.0
    # The engine kept serving after both recoveries.
    assert engine.counters.lookups > 0
    assert engine.object_count() >= 0


def test_out_of_range_crash_points_ignored():
    t = trace()
    plan = FaultPlan(FaultConfig(crash_at=(0, len(t) + 1_000)))
    result = replay(make_engine("log"), t, faults=plan)
    assert result.crashes == 0


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_device_faults_fire_and_are_counted(name):
    t = trace()
    plan = FaultPlan(
        FaultConfig(
            seed=5,
            read_error_rate=0.01,
            erase_error_rate=0.05,
            spare_blocks=1_000,
        )
    )
    result = replay(make_engine(name), t, faults=plan)
    fc = result.fault_counters
    assert fc is not None
    assert fc["read_retries"] > 0
    assert fc["blocks_retired"] == fc["program_failures"] + fc["erase_failures"]
    assert not math.isnan(result.miss_ratio)


def test_faulty_replay_is_deterministic():
    t = trace()
    cfg = FaultConfig(
        seed=9, read_error_rate=0.02, erase_error_rate=0.02, spare_blocks=1_000,
        crash_at=(3_000,),
    )
    a = replay(make_engine("set"), t, faults=FaultPlan(cfg))
    b = replay(make_engine("set"), t, faults=FaultPlan(cfg))
    assert a.final == b.final
    assert a.fault_counters == b.fault_counters


def test_faults_with_crashes_and_rates_together():
    """The full fault story on one engine: errors firing across crashes."""
    t = trace()
    engine = make_engine("fw")
    plan = FaultPlan(
        FaultConfig(
            seed=1,
            read_error_rate=0.02,
            erase_error_rate=0.02,
            spare_blocks=1_000,
            crash_at=(2_500, 6_000),
        )
    )
    result = replay(engine, t, faults=plan)
    assert result.crashes == 2
    assert result.fault_counters is not None
    assert result.fault_counters["read_retries"] > 0
