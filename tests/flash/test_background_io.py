"""Background (async engine work) I/O handling in the device layer."""

import pytest

from repro.flash.geometry import FlashGeometry
from repro.flash.latency import LatencyModel
from repro.flash.zns import ZNSDevice


@pytest.fixture
def dev():
    geo = FlashGeometry(
        page_size=4096, pages_per_block=8, num_blocks=8, blocks_per_zone=1
    )
    return ZNSDevice(
        geo, latency=LatencyModel(num_channels=2, read_cache_pages=0)
    )


class TestBackgroundReads:
    def test_background_read_does_not_stall_foreground(self, dev):
        dev.append_many(0, list("abcdefgh"))
        t = dev.latency.timings
        # A long chain of background reads on channel 0 (pages 0,2,4,6).
        for page in (0, 2, 4, 6):
            dev.read(page, now_us=0.0, background=True)
        # Foreground read right behind the chain: bounded by the suspend
        # floor, not the whole backlog.
        _, lat = dev.read(2, now_us=1.0)
        assert lat <= t.suspend_floor_us + t.read_us + t.transfer_us

    def test_foreground_read_chain_queues_fully(self, dev):
        dev.append_many(0, list("abcdefgh"))
        t = dev.latency.timings
        start = 1e6  # well past the initial programs' completion
        for page in (0, 2, 4):
            dev.read(page, now_us=start)
        _, lat = dev.read(6, now_us=start)
        assert lat >= 4 * t.read_us  # true queueing behind peers

    def test_background_flag_counts_reads_normally(self, dev):
        dev.append_many(0, ["x"])
        dev.read(0, background=True)
        assert dev.stats.host_read_ops == 1
