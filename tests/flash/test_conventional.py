"""Unit tests for the conventional (block-interface) SSD wrapper."""

import pytest

from repro.flash.conventional import ConventionalSSD
from repro.flash.geometry import FlashGeometry


@pytest.fixture
def ssd():
    geo = FlashGeometry(
        page_size=4096, pages_per_block=4, num_blocks=8, blocks_per_zone=1
    )
    return ConventionalSSD(geo, op_ratio=0.25)


class TestInterface:
    def test_usable_space_respects_op(self, ssd):
        assert ssd.num_lbas == int(ssd.geometry.num_pages * 0.75)
        assert ssd.usable_bytes == ssd.num_lbas * 4096

    def test_write_read_roundtrip(self, ssd):
        ssd.write(5, {"k": 9})
        payload, _ = ssd.read(5)
        assert payload == {"k": 9}

    def test_is_mapped_and_trim(self, ssd):
        assert not ssd.is_mapped(2)
        ssd.write(2, "v")
        assert ssd.is_mapped(2)
        ssd.trim(2)
        assert not ssd.is_mapped(2)

    def test_stats_shared_with_ftl(self, ssd):
        ssd.write(0, "x")
        assert ssd.stats.host_write_bytes == 4096

    def test_dlwa_emerges_under_churn(self, ssd):
        for round_ in range(10):
            for lba in range(ssd.num_lbas):
                ssd.write(lba, round_)
        assert ssd.stats.dlwa > 1.0
        # The set-baseline scenario: everything still intact.
        for lba in range(ssd.num_lbas):
            assert ssd.read(lba)[0] == 9
