"""Unit tests for the raw NAND array state machine."""

import pytest

from repro.errors import DeviceError, ReadError
from repro.flash.device import NandArray
from repro.flash.geometry import FlashGeometry


@pytest.fixture
def nand():
    geo = FlashGeometry(
        page_size=4096, pages_per_block=4, num_blocks=4, blocks_per_zone=2
    )
    return NandArray(geo)


class TestProgramRead:
    def test_program_then_read_roundtrips_payload(self, nand):
        nand.program(0, {"k": 1})
        assert nand.read(0) == {"k": 1}

    def test_double_program_rejected(self, nand):
        nand.program(0, "a")
        with pytest.raises(DeviceError):
            nand.program(0, "b")

    def test_read_unprogrammed_rejected(self, nand):
        with pytest.raises(ReadError):
            nand.read(0)

    def test_counters(self, nand):
        nand.program(0, "a")
        nand.read(0)
        nand.read(0)
        assert nand.program_count == 1
        assert nand.read_count == 2


class TestErase:
    def test_erase_block_clears_pages(self, nand):
        for page in range(4):
            nand.program(page, page)
        nand.erase_block(0)
        for page in range(4):
            assert not nand.is_programmed(page)
        # Pages can be programmed again after the erase.
        nand.program(0, "again")
        assert nand.read(0) == "again"

    def test_erase_zone_clears_all_member_blocks(self, nand):
        nand.program(0, "a")
        nand.program(4, "b")  # second block, same zone
        nand.erase_zone(0)
        assert not nand.is_programmed(0)
        assert not nand.is_programmed(4)

    def test_erase_only_touches_target_block(self, nand):
        nand.program(0, "a")
        nand.program(4, "b")
        nand.erase_block(0)
        assert nand.read(4) == "b"

    def test_wear_tracking(self, nand):
        nand.erase_block(1)
        nand.erase_block(1)
        nand.erase_block(2)
        assert nand.block_erases[1] == 2
        assert nand.max_block_erases() == 2
        assert nand.erase_count == 3

    def test_programmed_pages_in_block(self, nand):
        nand.program(0, "a")
        nand.program(1, "b")
        assert nand.programmed_pages_in_block(0) == 2
        assert nand.programmed_pages_in_block(1) == 0

    def test_erase_zone_counts_one_erase_per_member_block(self, nand):
        nand.program(0, "a")
        nand.erase_zone(0)
        assert nand.erase_count == 2  # blocks_per_zone = 2
        assert nand.block_erases[0] == 1
        assert nand.block_erases[1] == 1
        assert nand.block_erases[2] == 0

    def test_programmed_counts_track_erase_and_reprogram(self, nand):
        """The per-block counters stay exact through erase cycles."""
        for page in range(6):
            nand.program(page, page)
        assert nand.programmed_pages_in_block(0) == 4
        assert nand.programmed_pages_in_block(1) == 2
        nand.erase_zone(0)
        assert nand.programmed_pages_in_block(0) == 0
        assert nand.programmed_pages_in_block(1) == 0
        nand.program(2, "again")
        assert nand.programmed_pages_in_block(0) == 1
        nand.erase_block(0)
        assert nand.programmed_pages_in_block(0) == 0
