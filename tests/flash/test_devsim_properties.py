"""Property tests for the discrete-event device lane (DESIGN.md §9).

Five contracts, each driven by Hypothesis-random inputs:

1. the event loop never fires an event before its scheduled time, and
   fired order is exactly ``(time, seq)``;
2. within one priority class a die serves ops FIFO;
3. program/erase suspend never loses residual work — every op's
   consumed service time equals its nominal service time at completion;
4. identical seeds produce identical event sequences (frontend and
   device model both);
5. the event lane's aggregate engine counters equal the analytic
   lane's on random traces, for all five Table 4 engines.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fairywren import FairyWrenCache
from repro.baselines.kangaroo import KangarooCache
from repro.baselines.log_structured import LogStructuredCache
from repro.baselines.set_associative import SetAssociativeCache
from repro.core.config import NemoConfig
from repro.core.nemo import NemoCache
from repro.flash.devsim import EventLatencyModel, EventLoop
from repro.flash.devsim.frontend import FrontendScheduler
from repro.flash.devsim.nand import (
    OP_ERASE,
    OP_PROGRAM,
    OP_READ,
    Die,
    NandOp,
    register_die_handlers,
)
from repro.flash.geometry import FlashGeometry
from repro.flash.latency import NandTimings
from repro.harness.runner import replay
from repro.workloads.arrivals import assign_classes, bursty_arrivals
from repro.workloads.mixer import merged_twitter_trace

_times = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=50,
)


class TestEventLoopOrdering:
    @given(times=_times)
    @settings(max_examples=50, deadline=None)
    def test_no_event_fires_early_and_order_is_stable(self, times):
        loop = EventLoop()
        fired: list[tuple[float, int]] = []

        def handler(event):
            # The clock is exactly the event's timestamp when it fires.
            assert loop.now == event.time
            fired.append((event.time, event.seq))

        loop.register_handler("tick", handler)
        for t in times:
            loop.schedule(t, "tick")
        loop.run_until_idle()
        assert len(fired) == len(times)
        # (time, seq) is a total order: ties fire in schedule order.
        assert fired == sorted(fired)
        assert loop.fired == len(times)

    @given(
        times=_times,
        horizon=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_run_until_fires_exactly_the_horizon(self, times, horizon):
        loop = EventLoop()
        loop.register_handler("tick", lambda event: None)
        for t in times:
            loop.schedule(t, "tick")
        fired = loop.run_until(horizon)
        assert fired == sum(1 for t in times if t <= horizon)
        assert loop.now == horizon
        assert loop.pending() == len(times) - fired


def _make_die():
    loop = EventLoop()
    register_die_handlers(loop)
    return loop, Die(loop, 0, NandTimings())


def _make_op(kind: str, timings=NandTimings()) -> NandOp:
    if kind == "write":
        return NandOp(OP_PROGRAM, 0, timings.program_us)
    if kind == "erase":
        return NandOp(OP_ERASE, 0, timings.erase_us)
    return NandOp(OP_READ, 0, timings.read_us, background=(kind == "bg"))


class TestDieQueues:
    @given(
        kinds=st.lists(
            st.sampled_from(["fg", "bg", "write", "erase"]),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_fifo_within_priority_class(self, kinds):
        loop, die = _make_die()
        ops = []
        for kind in kinds:
            op = _make_op(kind)
            die.submit(op, 0.0)
            ops.append((kind, op))
        loop.run_until_idle()
        # Writes and erases share the write queue (one class).
        classes = {"fg": "fg", "bg": "bg", "write": "w", "erase": "w"}
        for cls in ("fg", "bg", "w"):
            done = [op.completed_at for k, op in ops if classes[k] == cls]
            assert all(c is not None for c in done)
            assert done == sorted(done)

    @given(
        steps=st.lists(
            st.tuples(
                st.sampled_from(["fg", "bg", "write", "erase"]),
                st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_suspend_preserves_residual_work(self, steps):
        loop, die = _make_die()
        ops = []
        now = 0.0
        for kind, gap in steps:
            now += gap
            loop.run_until(now)
            op = _make_op(kind)
            die.submit(op, now)
            ops.append(op)
        loop.run_until_idle()
        for op in ops:
            assert op.completed_at is not None
            # However many times it was suspended, every microsecond of
            # nominal service was actually executed.
            assert op.consumed_us == pytest.approx(op.service_us)
        assert die.completed_ops == len(ops)
        assert die.in_flight is None
        assert not die.fg and not die.bg and not die.writes


class TestDeterminism:
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 200))
    @settings(max_examples=20, deadline=None)
    def test_identical_seeds_identical_frontend_sequences(self, seed, n):
        def run_once():
            arrivals = bursty_arrivals(n, 50_000.0, seed=seed)
            classes = assign_classes(n, (0.7, 0.3), seed=seed)
            frontend = FrontendScheduler(
                arrivals.tolist(),
                class_ids=classes.tolist(),
                num_classes=2,
                queue_depth=4,
            )
            trace = frontend.loop.enable_trace()
            frontend.run(lambda index, now: float((index * 37) % 90) + 1.0)
            return list(trace), list(frontend.issue_us), list(frontend.complete_us)

        assert run_once() == run_once()

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_identical_inputs_identical_device_sequences(self, seed):
        rng = np.random.default_rng(seed)
        pages = rng.integers(0, 64, size=100).tolist()
        kinds = rng.integers(0, 3, size=100).tolist()
        gaps = rng.uniform(0.0, 120.0, size=100).tolist()

        def run_once():
            model = EventLatencyModel(num_channels=8, read_cache_pages=4)
            trace = model.loop.enable_trace()
            now = 0.0
            latencies = []
            for page, kind, gap in zip(pages, kinds, gaps):
                now += gap
                if kind == 0:
                    latencies.append(model.read(page, now))
                elif kind == 1:
                    latencies.append(model.program(page, now))
                else:
                    latencies.append(model.erase(page, now))
            model.drain()
            return list(trace), latencies

        assert run_once() == run_once()


def _parity_geometry() -> FlashGeometry:
    return FlashGeometry(
        page_size=4096, pages_per_block=64, num_blocks=16, blocks_per_zone=1
    )


def _parity_engines(geometry):
    """The five Table 4 engines, configured for the small geometry."""
    config = NemoConfig(
        flush_threshold=4, sgs_per_index_group=3, bf_capacity_per_set=20
    )
    return [
        LogStructuredCache(geometry),
        SetAssociativeCache(geometry, op_ratio=0.5),
        FairyWrenCache(geometry, log_fraction=0.05, op_ratio=0.05),
        KangarooCache(geometry, log_fraction=0.05, op_ratio=0.05),
        NemoCache(geometry, config),
    ]


def _assert_finals_identical(fa, fb):
    assert fa.keys() == fb.keys()
    for key in fa:
        va, vb = fa[key], fb[key]
        assert va == vb or (
            isinstance(va, float)
            and isinstance(vb, float)
            and math.isnan(va)
            and math.isnan(vb)
        ), f"{key}: {va!r} != {vb!r}"


class TestLaneCounterParity:
    """Aggregate counters are lane-invariant: the device timing model
    observes the request stream but never feeds back into cache
    decisions, so WA / miss ratio / op counts must match exactly."""

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(200, 600))
    @settings(max_examples=5, deadline=None)
    def test_all_five_engines(self, seed, n):
        trace = merged_twitter_trace(
            num_requests=n, wss_scale=1.0 / 2048, seed=seed
        )
        for index in range(5):
            analytic = replay(
                _parity_engines(_parity_geometry())[index],
                trace,
                latency_lane="analytic",
            )
            event = replay(
                _parity_engines(_parity_geometry())[index],
                trace,
                latency_lane="event",
            )
            _assert_finals_identical(event.final, analytic.final)
            assert event.latency_lane == "event"
            assert analytic.latency_lane == "analytic"
