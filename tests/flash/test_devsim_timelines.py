"""Hand-computed µs timelines for the device lanes (DESIGN.md §9).

Default timings: read 65, program 350, erase 3500, transfer 12,
suspend floor 180 (µs).  Every scenario where the analytic horizon
model is exact is asserted against *both* lanes with identical numbers;
the event lane's extra fidelity (a preempted write's in-device residual
delaying later writes) is pinned as an explicit, documented divergence.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.flash.devsim import EventLatencyModel, make_latency_model
from repro.flash.devsim.event import EventLoop
from repro.flash.devsim.frontend import FrontendScheduler
from repro.flash.devsim.nand import (
    OP_ERASE,
    OP_READ,
    Die,
    NandOp,
    register_die_handlers,
)
from repro.flash.latency import NandTimings


@pytest.fixture(params=["analytic", "event"])
def lane(request):
    return request.param


def _model(lane, **kwargs):
    kwargs.setdefault("num_channels", 8)
    kwargs.setdefault("read_cache_pages", 0)
    return make_latency_model(lane, **kwargs)


class TestBothLanes:
    """Scenarios where the two lanes must agree to the microsecond."""

    def test_unloaded_read(self, lane):
        # 65 read + 12 transfer.
        assert _model(lane).read(0, 0.0) == 77.0

    def test_read_behind_program_hits_suspend_floor(self, lane):
        m = _model(lane)
        # Program occupies channel 0 until t=350; host sees 350 + 12.
        assert m.program(0, 0.0) == 362.0
        # Read at t=10 starts at min(350, 10+180)=190, ends 255:
        # 255 - 10 + 12 = 257.
        assert m.read(0, 10.0) == 257.0

    def test_two_reads_collide_on_one_channel(self, lane):
        m = _model(lane)
        # Pages 0 and 8 share channel 0: 65 + 65 + 12 = 142 worst-case.
        assert m.read_many([0, 8], 0.0) == 142.0

    def test_reads_on_distinct_channels_overlap(self, lane):
        assert _model(lane).read_many([0, 1, 2, 3], 0.0) == 77.0

    def test_erase_suspend_resume(self, lane):
        m = _model(lane)
        # Erase is command-only: no transfer_us (the documented
        # asymmetry, test_latency.py::TestErasePath pins the analytic
        # side).
        assert m.erase(0, 0.0) == 3500.0
        # Read at t=100 behind the erase: starts at min(3500, 100+180)
        # = 280, ends 345; 345 - 100 + 12 = 257.
        assert m.read(0, 100.0) == 257.0

    def test_batched_sg_flush_stripes(self, lane):
        # 16 pages over 8 channels: two programs deep per channel,
        # 350 + 350 + 12 = 712 worst-case.
        assert _model(lane).program_many(list(range(16)), 0.0) == 712.0

    def test_read_buffer_hit_skips_the_device(self, lane):
        m = _model(lane, read_cache_pages=8)
        assert m.read(0, 0.0) == 77.0
        # Buffered re-read: transfer only, no channel/die occupancy.
        assert m.read(0, 0.0) == 12.0

    def test_reset_clears_device_state(self, lane):
        m = _model(lane)
        m.program(0, 0.0)
        assert not m.idle_at(1.0)
        m.reset()
        assert m.idle_at(0.0)
        assert m.read(0, 0.0) == 77.0


class TestEventLaneDivergence:
    """Where the event lane is *more* faithful than the analytic one."""

    def test_preempted_program_residual_delays_later_writes(self):
        # Program [0,350); read at t=10 suspends it at 190, runs
        # [190,255), residual resumes — in-device completion slips to
        # 415.  A program at t=400 queues behind the residual on the
        # event lane (415+350-400+12 = 377) while the analytic lane has
        # forgotten the residual (max(400,350)+350-400+12 = 362).
        analytic = _model("analytic")
        event = _model("event")
        for m in (analytic, event):
            assert m.program(0, 0.0) == 362.0
            assert m.read(0, 10.0) == 257.0
        assert analytic.program(0, 400.0) == 362.0
        assert event.program(0, 400.0) == 377.0

    def test_suspend_splits_the_erase_exactly(self):
        loop = EventLoop()
        register_die_handlers(loop)
        die = Die(loop, 0, NandTimings())
        erase = NandOp(OP_ERASE, 0, 3500.0)
        die.submit(erase, 0.0)
        loop.run_until(100.0)
        read = NandOp(OP_READ, 0, 65.0)
        die.submit(read, 100.0)
        loop.run_until_idle()
        # Suspend fires at 100+180=280; read runs [280,345); the erase
        # executed [0,280) + [345,3565) — all 3500us of it.
        assert read.completed_at == 345.0
        assert erase.completed_at == 3565.0
        assert erase.consumed_us == 3500.0
        assert erase.preemptions == 1
        assert die.preemptions == 1
        assert die.completed_ops == 2

    def test_dies_per_channel_adds_parallelism(self):
        # Pages 0 and 8 share channel 0; with two dies per channel they
        # land on different dies and overlap fully.
        two_dies = EventLatencyModel(
            num_channels=8, dies_per_channel=2, read_cache_pages=0
        )
        assert two_dies.read(0, 0.0) == 77.0
        assert two_dies.read(8, 0.0) == 77.0
        one_die = EventLatencyModel(num_channels=8, read_cache_pages=0)
        assert one_die.read(0, 0.0) == 77.0
        assert one_die.read(8, 0.0) == 142.0

    def test_model_counts_completions(self):
        m = _model("event")
        m.program(0, 0.0)
        m.read(0, 10.0)
        assert m.completed_ops == 0  # still simulating
        m.drain()
        assert m.completed_ops == 2
        assert m.total_preemptions == 1

    def test_submission_behind_the_clock_rejected(self):
        m = _model("event")
        m.read(0, 100.0)
        with pytest.raises(ConfigError):
            m.read(0, 50.0)


class TestFrontendGoldens:
    def test_closed_loop_priority_ordering(self):
        # QD=1, four simultaneous arrivals, classes [1, 0, 1, 0], fixed
        # 10us service.  Index 0 issues immediately (slot free); after
        # that class 0 drains first: 1, then 3, then 2.
        frontend = FrontendScheduler(
            [0.0, 0.0, 0.0, 0.0],
            class_ids=[1, 0, 1, 0],
            num_classes=2,
            queue_depth=1,
        )
        frontend.run(lambda index, now: 10.0)
        assert frontend.issue_us == [0.0, 10.0, 30.0, 20.0]
        assert frontend.complete_us == [10.0, 20.0, 40.0, 30.0]
        assert frontend.max_outstanding == 1

    def test_open_loop_issues_at_arrival(self):
        arrivals = [0.0, 5.0, 6.0, 50.0]
        frontend = FrontendScheduler(arrivals, queue_depth=None)
        frontend.run(lambda index, now: 100.0)
        assert frontend.issue_us == arrivals
        # All four overlap: the last arrival (t=50) lands while the
        # first three (completing at 100/105/106) are still in flight.
        assert frontend.max_outstanding == 4

    def test_queueing_delay_appears_in_sojourn(self):
        frontend = FrontendScheduler([0.0, 0.0], queue_depth=1)
        frontend.run(lambda index, now: 10.0)
        # Second request waited a full service time before issuing.
        assert frontend.issue_us == [0.0, 10.0]
        assert frontend.complete_us == [10.0, 20.0]

    def test_rejects_bad_configs(self):
        with pytest.raises(ConfigError):
            FrontendScheduler([0.0], queue_depth=0)
        with pytest.raises(ConfigError):
            FrontendScheduler([5.0, 1.0])  # decreasing arrivals
        with pytest.raises(ConfigError):
            FrontendScheduler([0.0], class_ids=[2], num_classes=2)
        with pytest.raises(ConfigError):
            FrontendScheduler([0.0, 1.0], class_ids=[0])  # length mismatch
        with pytest.raises(ConfigError):
            FrontendScheduler([0.0], num_classes=0)

    def test_rejects_negative_service_latency(self):
        frontend = FrontendScheduler([0.0])
        with pytest.raises(ConfigError):
            frontend.run(lambda index, now: -1.0)
