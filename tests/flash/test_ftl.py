"""Unit tests + property tests for the page-mapping FTL and its GC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, FTLError, ReadError
from repro.flash.ftl import PageMapFTL
from repro.flash.geometry import FlashGeometry


def make_ftl(op_ratio=0.25, num_blocks=8, pages_per_block=4, **kw):
    geo = FlashGeometry(
        page_size=4096,
        pages_per_block=pages_per_block,
        num_blocks=num_blocks,
        blocks_per_zone=1,
    )
    return PageMapFTL(geo, op_ratio=op_ratio, **kw)


class TestBasics:
    def test_write_then_read(self):
        ftl = make_ftl()
        ftl.write(0, "hello")
        payload, _ = ftl.read(0)
        assert payload == "hello"

    def test_overwrite_returns_newest(self):
        ftl = make_ftl()
        ftl.write(3, "old")
        ftl.write(3, "new")
        assert ftl.read(3)[0] == "new"

    def test_read_unmapped_rejected(self):
        ftl = make_ftl()
        with pytest.raises(ReadError):
            ftl.read(0)

    def test_lba_bounds(self):
        ftl = make_ftl()
        with pytest.raises(FTLError):
            ftl.write(ftl.num_lbas, "x")
        with pytest.raises(FTLError):
            ftl.read(-1)

    def test_trim_unmaps(self):
        ftl = make_ftl()
        ftl.write(1, "x")
        ftl.trim(1)
        assert not ftl.is_mapped(1)
        with pytest.raises(ReadError):
            ftl.read(1)
        ftl.trim(1)  # idempotent

    def test_op_ratio_shrinks_lba_space(self):
        geo = FlashGeometry(
            page_size=4096, pages_per_block=4, num_blocks=8, blocks_per_zone=1
        )
        quarter = PageMapFTL(geo, op_ratio=0.25)
        half = PageMapFTL(geo, op_ratio=0.5)
        assert quarter.num_lbas == 24
        assert half.num_lbas == 16

    def test_invalid_op_ratio_rejected(self):
        with pytest.raises(ConfigError):
            make_ftl(op_ratio=1.0)
        with pytest.raises(ConfigError):
            make_ftl(op_ratio=-0.1)

    def test_op_below_gc_watermark_rejected(self):
        """An FTL whose spare cannot cover the GC watermark deadlocks."""
        with pytest.raises(ConfigError):
            make_ftl(op_ratio=0.05)


class TestGC:
    def test_sustained_overwrites_trigger_gc(self):
        ftl = make_ftl(op_ratio=0.25)
        for round_ in range(6):
            for lba in range(ftl.num_lbas):
                ftl.write(lba, (round_, lba))
        assert ftl.stats.gc_runs > 0
        # All data still readable and current after GC.
        for lba in range(ftl.num_lbas):
            assert ftl.read(lba)[0] == (5, lba)
        ftl.check_invariants()

    def test_gc_produces_dlwa_above_one(self):
        ftl = make_ftl(op_ratio=0.25)
        for round_ in range(8):
            for lba in range(ftl.num_lbas):
                ftl.write(lba, round_)
        assert ftl.stats.dlwa > 1.0

    def test_more_op_means_less_dlwa(self):
        def churn(op):
            ftl = make_ftl(op_ratio=op, num_blocks=16)
            for round_ in range(12):
                for lba in range(ftl.num_lbas):
                    ftl.write(lba, round_)
            return ftl.stats.dlwa

        assert churn(0.5) < churn(0.15)

    def test_relocation_callback_sees_moves(self):
        moves = []
        ftl = make_ftl(
            op_ratio=0.25, relocation_callback=lambda lba, old, new: moves.append(lba)
        )
        for round_ in range(6):
            for lba in range(ftl.num_lbas):
                ftl.write(lba, round_)
        if ftl.stats.gc_relocated_pages:
            assert len(moves) == ftl.stats.gc_relocated_pages


class _VictimRecorder(PageMapFTL):
    """Records the victim block id of every GC run, in order."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.victims: list[int] = []

    def _gc_once(self, victim=None, *, now_us=0.0):
        if victim is None:
            victim = self._pick_victim()
        self.victims.append(victim)
        super()._gc_once(victim, now_us=now_us)


class _LinearScanFTL(_VictimRecorder):
    """Reference policy: the pre-index O(num_blocks) greedy scan.

    Minimum valid count over closed non-free blocks, ties broken by the
    lowest block id (strict ``<`` while scanning ids in order), early
    exit on a fully-invalid block — the exact semantics the bucket index
    replaced and must reproduce victim-for-victim.
    """

    def _pick_victim(self):
        free = set(self._free_blocks)
        best = None
        best_valid = None
        for block in range(self.geometry.num_blocks):
            if block == self._active_block or block in free:
                continue
            valid = self._valid_in_block[block]
            if best is None or valid < best_valid:
                best, best_valid = block, valid
                if valid == 0:
                    break
        return best


def _apply_ops(ftl, ops):
    """Interleave writes, trims and explicit GC; return the dict model."""
    model: dict[int, object] = {}
    for i, (kind, lba) in enumerate(ops):
        lba %= ftl.num_lbas
        if kind == 0:
            ftl.write(lba, i)
            model[lba] = i
        elif kind == 1:
            ftl.trim(lba)
            model.pop(lba, None)
        elif ftl._pick_victim() is not None:
            ftl._gc_once()
    return model


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 40)),
        min_size=1,
        max_size=400,
    )
)
def test_ftl_invariants_under_churn(ops):
    """Random write/trim/GC interleavings never corrupt internal state."""
    ftl = make_ftl(op_ratio=0.3, num_blocks=8, pages_per_block=4)
    model = _apply_ops(ftl, ops)
    ftl.check_invariants()
    for lba in range(ftl.num_lbas):
        if lba in model:
            assert ftl.read(lba)[0] == model[lba]
        else:
            assert not ftl.is_mapped(lba)


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 40)),
        min_size=1,
        max_size=400,
    )
)
def test_victim_sequence_matches_linear_scan(ops):
    """The bucket index picks the same victims as the old linear scan."""
    geo = FlashGeometry(
        page_size=4096, pages_per_block=4, num_blocks=8, blocks_per_zone=1
    )
    fast = _VictimRecorder(geo, op_ratio=0.3)
    ref = _LinearScanFTL(geo, op_ratio=0.3)
    _apply_ops(fast, ops)
    _apply_ops(ref, ops)
    assert fast.victims == ref.victims
    assert list(fast._l2p) == list(ref._l2p)
    assert fast.stats.gc_runs == ref.stats.gc_runs
    assert fast.stats.gc_relocated_pages == ref.stats.gc_relocated_pages
    fast.check_invariants()


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 20)),
        min_size=1,
        max_size=300,
    )
)
def test_ftl_model_equivalence(ops):
    """The FTL behaves as a plain dict under write/trim, at any GC load."""
    ftl = make_ftl(op_ratio=0.3, num_blocks=8, pages_per_block=4)
    model: dict[int, object] = {}
    for i, (is_write, lba) in enumerate(ops):
        lba %= ftl.num_lbas
        if is_write:
            ftl.write(lba, i)
            model[lba] = i
        else:
            ftl.trim(lba)
            model.pop(lba, None)
    for lba in range(ftl.num_lbas):
        if lba in model:
            assert ftl.read(lba)[0] == model[lba]
        else:
            assert not ftl.is_mapped(lba)
    ftl.check_invariants()
