"""Unit tests for flash geometry arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AlignmentError, ConfigError
from repro.flash.geometry import MIB, FlashGeometry


class TestConstruction:
    def test_defaults_are_consistent(self):
        geo = FlashGeometry()
        assert geo.capacity_bytes == geo.num_pages * geo.page_size
        assert geo.num_zones * geo.pages_per_zone == geo.num_pages

    def test_rejects_nonpositive_page_size(self):
        with pytest.raises(ConfigError):
            FlashGeometry(page_size=0)

    def test_rejects_nonpositive_blocks(self):
        with pytest.raises(ConfigError):
            FlashGeometry(num_blocks=0)

    def test_rejects_blocks_not_multiple_of_zone(self):
        with pytest.raises(ConfigError):
            FlashGeometry(num_blocks=10, blocks_per_zone=4)

    def test_from_capacity_rounds_up(self):
        geo = FlashGeometry.from_capacity(10 * MIB, zone_size=MIB)
        assert geo.capacity_bytes >= 10 * MIB
        assert geo.zone_size == MIB

    def test_from_capacity_rejects_zero(self):
        with pytest.raises(ConfigError):
            FlashGeometry.from_capacity(0)

    def test_describe_mentions_zones(self):
        assert "zones" in FlashGeometry().describe()


class TestAddressing:
    @pytest.fixture
    def geo(self):
        return FlashGeometry(
            page_size=4096, pages_per_block=16, num_blocks=8, blocks_per_zone=2
        )

    def test_page_to_block(self, geo):
        assert geo.page_to_block(0) == 0
        assert geo.page_to_block(15) == 0
        assert geo.page_to_block(16) == 1

    def test_page_to_zone(self, geo):
        assert geo.page_to_zone(0) == 0
        assert geo.page_to_zone(31) == 0
        assert geo.page_to_zone(32) == 1

    def test_block_first_page(self, geo):
        assert geo.block_first_page(3) == 48

    def test_zone_first_page(self, geo):
        assert geo.zone_first_page(1) == 32

    def test_out_of_range_page(self, geo):
        with pytest.raises(AlignmentError):
            geo.check_page(geo.num_pages)
        with pytest.raises(AlignmentError):
            geo.check_page(-1)

    def test_out_of_range_block(self, geo):
        with pytest.raises(AlignmentError):
            geo.check_block(geo.num_blocks)

    def test_out_of_range_zone(self, geo):
        with pytest.raises(AlignmentError):
            geo.check_zone(geo.num_zones)


@given(
    pages_per_block=st.integers(1, 64),
    num_zones=st.integers(1, 32),
    blocks_per_zone=st.integers(1, 8),
)
def test_address_roundtrip(pages_per_block, num_zones, blocks_per_zone):
    """Every page maps to the block and zone that contain it."""
    geo = FlashGeometry(
        page_size=512,
        pages_per_block=pages_per_block,
        num_blocks=num_zones * blocks_per_zone,
        blocks_per_zone=blocks_per_zone,
    )
    for page in range(0, geo.num_pages, max(1, geo.num_pages // 50)):
        block = geo.page_to_block(page)
        zone = geo.page_to_zone(page)
        assert geo.block_first_page(block) <= page < geo.block_first_page(block) + pages_per_block
        first = geo.zone_first_page(zone)
        assert first <= page < first + geo.pages_per_zone
