"""Unit tests for the channel latency / interference model."""

import pytest

from repro.flash.latency import LatencyModel, NandTimings


@pytest.fixture
def model():
    # Channel-behaviour tests disable the controller read buffer.
    return LatencyModel(num_channels=4, timings=NandTimings(), read_cache_pages=0)


class TestBasics:
    def test_unloaded_read_latency(self, model):
        t = model.timings
        assert model.read(0, 0.0) == pytest.approx(t.read_us + t.transfer_us)

    def test_unloaded_program_latency(self, model):
        t = model.timings
        assert model.program(0, 0.0) == pytest.approx(t.program_us + t.transfer_us)

    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            LatencyModel(num_channels=0)

    def test_channel_striping(self, model):
        assert model.channel_of(0) == 0
        assert model.channel_of(5) == 1
        assert model.channel_of(4) == 0


class TestInterference:
    def test_read_behind_program_is_delayed(self, model):
        """The Fig. 15 mechanism: a program stalls a following read."""
        t = model.timings
        model.program(0, 0.0)
        delayed = model.read(0, 1.0)  # same channel, 1 µs later
        clean = model.read(1, 1.0)  # different channel
        assert delayed > clean

    def test_program_suspend_bounds_the_stall(self, model):
        """With suspend support, a read never waits a full program."""
        t = model.timings
        model.program(0, 0.0)
        lat = model.read(0, 0.0)
        assert lat <= t.suspend_floor_us + t.read_us + t.transfer_us

    def test_reads_on_distinct_channels_overlap(self, model):
        """Parallel candidate reads cost ~one read (Nemo §5.5)."""
        t = model.timings
        lat = model.read_many([0, 1, 2, 3], 0.0)
        assert lat == pytest.approx(t.read_us + t.transfer_us)

    def test_reads_on_same_channel_serialise(self, model):
        t = model.timings
        lat = model.read_many([0, 4], 0.0)  # both on channel 0
        assert lat >= 2 * t.read_us

    def test_batched_program_stripes(self, model):
        """An 8-page batch on 4 channels costs ~2 program times."""
        t = model.timings
        lat = model.program_many(list(range(8)), 0.0)
        assert lat == pytest.approx(2 * t.program_us + t.transfer_us)

    def test_empty_batches_cost_nothing(self, model):
        assert model.read_many([], 0.0) == 0.0
        assert model.program_many([], 0.0) == 0.0


class TestReadCache:
    def test_repeat_read_served_from_buffer(self):
        m = LatencyModel(num_channels=4, read_cache_pages=8)
        first = m.read(0, 0.0)
        second = m.read(0, 0.0)
        assert second == m.timings.transfer_us
        assert second < first

    def test_lru_eviction(self):
        m = LatencyModel(num_channels=4, read_cache_pages=2)
        m.read(0, 0.0)
        m.read(1, 0.0)
        m.read(2, 0.0)  # evicts page 0
        assert m.read(0, 1e9) > m.timings.transfer_us

    def test_disabled_cache_always_hits_nand(self):
        m = LatencyModel(num_channels=4, read_cache_pages=0)
        t = m.timings
        assert m.read(0, 0.0) >= t.read_us
        assert m.read(0, 1e9) >= t.read_us

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(read_cache_pages=-1)


class TestState:
    def test_idle_after_quiescence(self, model):
        model.program(0, 0.0)
        assert not model.idle_at(1.0)
        assert model.idle_at(1e9)

    def test_reset_clears_channels(self, model):
        model.program(0, 0.0)
        model.reset()
        assert model.idle_at(0.0)

    def test_erase_suspendable_for_reads(self, model):
        t = model.timings
        model.erase(0, 0.0)
        lat = model.read(0, 0.0)
        # Erase-suspend: the read is bounded by the suspend floor.
        assert lat <= t.suspend_floor_us + t.read_us + t.transfer_us

    def test_erase_blocks_following_program(self, model):
        t = model.timings
        model.erase(0, 0.0)
        lat = model.program(0, 0.0)
        # Writes do not preempt erases.
        assert lat >= t.erase_us
