"""Unit tests for the channel latency / interference model."""

import pytest

from repro.flash.latency import LatencyModel, NandTimings


@pytest.fixture
def model():
    # Channel-behaviour tests disable the controller read buffer.
    return LatencyModel(num_channels=4, timings=NandTimings(), read_cache_pages=0)


class TestBasics:
    def test_unloaded_read_latency(self, model):
        t = model.timings
        assert model.read(0, 0.0) == pytest.approx(t.read_us + t.transfer_us)

    def test_unloaded_program_latency(self, model):
        t = model.timings
        assert model.program(0, 0.0) == pytest.approx(t.program_us + t.transfer_us)

    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            LatencyModel(num_channels=0)

    def test_channel_striping(self, model):
        assert model.channel_of(0) == 0
        assert model.channel_of(5) == 1
        assert model.channel_of(4) == 0


class TestInterference:
    def test_read_behind_program_is_delayed(self, model):
        """The Fig. 15 mechanism: a program stalls a following read."""
        t = model.timings
        model.program(0, 0.0)
        delayed = model.read(0, 1.0)  # same channel, 1 µs later
        clean = model.read(1, 1.0)  # different channel
        assert delayed > clean

    def test_program_suspend_bounds_the_stall(self, model):
        """With suspend support, a read never waits a full program."""
        t = model.timings
        model.program(0, 0.0)
        lat = model.read(0, 0.0)
        assert lat <= t.suspend_floor_us + t.read_us + t.transfer_us

    def test_reads_on_distinct_channels_overlap(self, model):
        """Parallel candidate reads cost ~one read (Nemo §5.5)."""
        t = model.timings
        lat = model.read_many([0, 1, 2, 3], 0.0)
        assert lat == pytest.approx(t.read_us + t.transfer_us)

    def test_reads_on_same_channel_serialise(self, model):
        t = model.timings
        lat = model.read_many([0, 4], 0.0)  # both on channel 0
        assert lat >= 2 * t.read_us

    def test_batched_program_stripes(self, model):
        """An 8-page batch on 4 channels costs ~2 program times."""
        t = model.timings
        lat = model.program_many(list(range(8)), 0.0)
        assert lat == pytest.approx(2 * t.program_us + t.transfer_us)

    def test_empty_batches_cost_nothing(self, model):
        assert model.read_many([], 0.0) == 0.0
        assert model.program_many([], 0.0) == 0.0


class TestReadCache:
    def test_repeat_read_served_from_buffer(self):
        m = LatencyModel(num_channels=4, read_cache_pages=8)
        first = m.read(0, 0.0)
        second = m.read(0, 0.0)
        assert second == m.timings.transfer_us
        assert second < first

    def test_lru_eviction(self):
        m = LatencyModel(num_channels=4, read_cache_pages=2)
        m.read(0, 0.0)
        m.read(1, 0.0)
        m.read(2, 0.0)  # evicts page 0
        assert m.read(0, 1e9) > m.timings.transfer_us

    def test_disabled_cache_always_hits_nand(self):
        m = LatencyModel(num_channels=4, read_cache_pages=0)
        t = m.timings
        assert m.read(0, 0.0) >= t.read_us
        assert m.read(0, 1e9) >= t.read_us

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(read_cache_pages=-1)


class TestState:
    def test_idle_after_quiescence(self, model):
        model.program(0, 0.0)
        assert not model.idle_at(1.0)
        assert model.idle_at(1e9)

    def test_reset_clears_channels(self, model):
        model.program(0, 0.0)
        model.reset()
        assert model.idle_at(0.0)

    def test_erase_suspendable_for_reads(self, model):
        t = model.timings
        model.erase(0, 0.0)
        lat = model.read(0, 0.0)
        # Erase-suspend: the read is bounded by the suspend floor.
        assert lat <= t.suspend_floor_us + t.read_us + t.transfer_us

    def test_erase_blocks_following_program(self, model):
        t = model.timings
        model.erase(0, 0.0)
        lat = model.program(0, 0.0)
        # Writes do not preempt erases.
        assert lat >= t.erase_us


class TestErasePath:
    """Regression: host-visible erase latency carries no ``transfer_us``.

    Reads and programs move a page over the host interconnect, so their
    latency is NAND service + transfer; an erase is command-only — no
    data phase — so the model deliberately returns the raw completion
    latency (DESIGN.md §9 records the decision).  Both device lanes
    implement the identical contract.
    """

    @pytest.mark.parametrize("lane", ["analytic", "event"])
    def test_erase_excludes_transfer_overhead(self, lane):
        from repro.flash.devsim import make_latency_model

        m = make_latency_model(lane, num_channels=4, read_cache_pages=0)
        t = m.timings
        assert m.erase(0, 0.0) == t.erase_us
        assert m.read(1, 0.0) == t.read_us + t.transfer_us
        assert m.program(2, 0.0) == t.program_us + t.transfer_us

    @pytest.mark.parametrize("lane", ["analytic", "event"])
    def test_asymmetry_survives_custom_timings(self, lane):
        from repro.flash.devsim import make_latency_model

        # An exaggerated transfer cost makes any accidental
        # +transfer_us on the erase path unmistakable.
        timings = NandTimings(transfer_us=1000.0)
        m = make_latency_model(
            lane, num_channels=4, timings=timings, read_cache_pages=0
        )
        assert m.erase(0, 0.0) == timings.erase_us
        assert m.read(1, 0.0) == timings.read_us + 1000.0


class TestHandComputedTimelines:
    """Exact timelines the event-batched rewrite must preserve.

    Default timings: read 65, program 350, erase 3500, transfer 12,
    suspend floor 180 (µs).
    """

    def test_erase_suspend_timeline(self):
        m = LatencyModel(num_channels=4, read_cache_pages=0)
        assert m.erase(0, 0.0) == 3500.0  # ch0 busy until 3500
        # Read at t=100 behind the erase: starts at min(3500, 100+180)
        # = 280, finishes 345, + 12 transfer => 257 total.
        assert m.read(0, 100.0) == 257.0
        # The read did not shorten the erase horizon: a program at
        # t=400 still waits for the full erase (3500-400+350+12).
        assert m.program(0, 400.0) == 3462.0

    def test_background_reads_stay_suspendable(self):
        """A foreground read jumps a background-read backlog."""
        fg = LatencyModel(num_channels=8, read_cache_pages=0)
        bg = LatencyModel(num_channels=8, read_cache_pages=0)
        # Five serialised reads on channel 0 build a 325 µs backlog.
        for i in range(5):
            fg.read(8 * i, 0.0, background=False)
            bg.read(8 * i, 0.0, background=True)
        # Behind foreground reads: waits the whole backlog.
        # 325 + 65 + 12 = 402.
        assert fg.read(0, 0.0) == 402.0
        # Behind background reads: bounded by the suspend floor.
        # min(325, 0+180) + 65 + 12 = 257.
        assert bg.read(0, 0.0) == 257.0

    def test_read_buffer_hit_occupies_no_channel(self):
        m = LatencyModel(num_channels=4, read_cache_pages=8)
        assert m.read(0, 0.0) == 77.0  # 65 + 12, ch0 busy until 65
        # Buffered re-read: transfer only, channel untouched.
        assert m.read(0, 0.0) == m.timings.transfer_us
        # Page 4 (also ch0) queues behind the *first* read only:
        # 65 + 65 + 12 = 142, not 130 + 65 + 12.
        assert m.read(4, 0.0) == 142.0

    def test_program_timeline_not_suspendable_for_writes(self):
        m = LatencyModel(num_channels=4, read_cache_pages=0)
        assert m.program(0, 0.0) == 362.0  # 350 + 12
        # A second program waits the full first one: 350+350+12.
        assert m.program(0, 0.0) == 712.0
        # A read behind both is floor-bounded: min(700,180)+65+12.
        assert m.read(0, 0.0) == 257.0


class TestBatchLanesMatchScalar:
    """read_many/program_many == per-page scalar calls, state included."""

    def _pages(self):
        # Repeats (cache hits), channel collisions, fresh pages.
        return [0, 3, 8, 0, 11, 8, 5, 16, 3, 24, 1, 0]

    def test_read_many_matches_scalar_reference(self):
        for cache_pages in (0, 2, 64):
            for background in (False, True):
                batched = LatencyModel(
                    num_channels=8, read_cache_pages=cache_pages
                )
                scalar = LatencyModel(
                    num_channels=8, read_cache_pages=cache_pages
                )
                scalar.program(2, 0.0)  # pre-existing channel state
                batched.program(2, 0.0)
                got = batched.read_many(
                    self._pages(), 50.0, background=background
                )
                want = max(
                    scalar.read(p, 50.0, background=background)
                    for p in self._pages()
                )
                assert got == want
                assert list(batched._busy_until) == list(scalar._busy_until)
                assert batched._busy_is_program == scalar._busy_is_program
                assert batched._read_cache == scalar._read_cache

    def test_program_many_matches_scalar_reference(self):
        batched = LatencyModel(num_channels=8, read_cache_pages=0)
        scalar = LatencyModel(num_channels=8, read_cache_pages=0)
        pages = list(range(20)) + [0, 8, 3]
        got = batched.program_many(pages, 10.0)
        want = max(scalar.program(p, 10.0) for p in pages)
        assert got == want
        assert list(batched._busy_until) == list(scalar._busy_until)
        assert batched._busy_is_program == scalar._busy_is_program
