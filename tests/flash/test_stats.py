"""Unit tests for write/read accounting and amplification metrics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.flash.stats import FlashStats


class TestRecording:
    def test_initial_metrics_are_nan(self):
        s = FlashStats()
        assert math.isnan(s.alwa)
        assert math.isnan(s.dlwa)
        assert math.isnan(s.total_wa)
        assert math.isnan(s.read_amplification)

    def test_alwa_is_host_over_logical(self):
        s = FlashStats()
        s.record_logical(100)
        s.record_host_write(400)
        assert s.alwa == 4.0

    def test_dlwa_is_one_without_gc(self):
        s = FlashStats()
        s.record_host_write(4096)
        assert s.dlwa == 1.0

    def test_gc_adds_flash_but_not_host_bytes(self):
        s = FlashStats()
        s.record_host_write(4096, also_flash=False)
        s.flash_write_bytes += 4096
        s.record_gc(relocated_pages=3, page_size=4096)
        assert s.host_write_bytes == 4096
        assert s.flash_write_bytes == 4 * 4096
        assert s.dlwa == 4.0
        assert s.gc_runs == 1
        assert s.gc_relocated_pages == 3

    def test_total_wa_composes_alwa_and_dlwa(self):
        s = FlashStats()
        s.record_logical(1000)
        s.record_host_write(2000, also_flash=False)
        s.flash_write_bytes += 2000
        s.record_gc(relocated_pages=1, page_size=2000)
        assert s.total_wa == pytest.approx(s.alwa * s.dlwa)

    def test_batched_write_counts_one_op(self):
        s = FlashStats()
        s.record_host_write(10 * 4096, ops=1)
        assert s.host_write_ops == 1
        assert s.host_write_bytes == 10 * 4096

    def test_read_amplification(self):
        s = FlashStats()
        s.record_logical_read(100)
        s.record_host_read(4096)
        assert s.read_amplification == pytest.approx(40.96)

    def test_negative_bytes_rejected(self):
        s = FlashStats()
        for method in (
            s.record_logical,
            s.record_logical_read,
            s.record_host_write,
            s.record_host_read,
        ):
            with pytest.raises(ValueError):
                method(-1)
        with pytest.raises(ValueError):
            s.record_gc(-1, 4096)

    def test_snapshot_contains_derived_metrics(self):
        s = FlashStats()
        s.record_logical(10)
        s.record_host_write(20)
        snap = s.snapshot()
        assert snap["alwa"] == 2.0
        assert snap["host_write_bytes"] == 20


@given(
    writes=st.lists(
        st.tuples(st.integers(1, 10_000), st.integers(1, 10_000)), min_size=1
    )
)
def test_counters_are_monotonic_and_alwa_matches(writes):
    """ALWA always equals the running byte ratio, regardless of order."""
    s = FlashStats()
    logical = host = 0
    for lb, hb in writes:
        s.record_logical(lb)
        s.record_host_write(hb)
        logical += lb
        host += hb
        assert s.logical_write_bytes == logical
        assert s.host_write_bytes == host
        assert s.alwa == pytest.approx(host / logical)
