"""Unit tests for the ZNS device simulator."""

import pytest

from repro.errors import ZoneStateError
from repro.flash.geometry import FlashGeometry
from repro.flash.zns import ZNSDevice
from repro.flash.zone import ZoneState


@pytest.fixture
def dev():
    geo = FlashGeometry(
        page_size=4096, pages_per_block=4, num_blocks=8, blocks_per_zone=2
    )
    return ZNSDevice(geo)


class TestAppend:
    def test_append_returns_sequential_pages(self, dev):
        p0, _ = dev.append(0, "a")
        p1, _ = dev.append(0, "b")
        assert (p0, p1) == (0, 1)

    def test_append_many_is_contiguous(self, dev):
        pages, _ = dev.append_many(0, list("abcde"))
        assert pages == [0, 1, 2, 3, 4]

    def test_append_many_rejects_oversized_batch(self, dev):
        with pytest.raises(ZoneStateError):
            dev.append_many(0, ["x"] * (dev.geometry.pages_per_zone + 1))

    def test_appends_to_different_zones_are_independent(self, dev):
        p0, _ = dev.append(0, "a")
        p1, _ = dev.append(1, "b")
        assert p1 == dev.geometry.zone_first_page(1)
        assert dev.read(p0)[0] == "a"
        assert dev.read(p1)[0] == "b"

    def test_batched_append_is_one_host_op(self, dev):
        dev.append_many(0, list("abcd"))
        assert dev.stats.host_write_ops == 1
        assert dev.stats.host_write_bytes == 4 * dev.geometry.page_size


class TestReads:
    def test_read_many_counts_all_pages(self, dev):
        pages, _ = dev.append_many(0, list("abc"))
        payloads, _ = dev.read_many(pages)
        assert payloads == ["a", "b", "c"]
        assert dev.stats.host_read_ops == 3


class TestZoneManagement:
    def test_full_zone_rejects_appends(self, dev):
        dev.append_many(0, ["x"] * dev.geometry.pages_per_zone)
        assert dev.zone_state(0) is ZoneState.FULL
        with pytest.raises(ZoneStateError):
            dev.append(0, "y")

    def test_reset_allows_rewriting(self, dev):
        dev.append_many(0, ["x"] * dev.geometry.pages_per_zone)
        dev.reset_zone(0)
        assert dev.zone_state(0) is ZoneState.EMPTY
        page, _ = dev.append(0, "fresh")
        assert dev.read(page)[0] == "fresh"

    def test_reset_empty_zone_is_noop(self, dev):
        assert dev.reset_zone(3) == 0.0
        assert dev.stats.erase_ops == 0

    def test_find_empty_zone(self, dev):
        assert dev.find_empty_zone() == 0
        dev.append(0, "a")
        assert dev.find_empty_zone() == 1

    def test_empty_zones_lists_all_initially(self, dev):
        assert dev.empty_zones() == list(range(dev.num_zones))

    def test_finish_zone(self, dev):
        dev.append(2, "a")
        dev.finish_zone(2)
        assert dev.zone_state(2) is ZoneState.FULL

    def test_utilization(self, dev):
        assert dev.utilization() == 0.0
        dev.append_many(0, ["x"] * dev.geometry.pages_per_zone)
        assert dev.utilization() == pytest.approx(1 / dev.num_zones)


class TestDLWA:
    def test_dlwa_is_exactly_one(self, dev):
        """ZNS has no internal relocation: flash bytes == host bytes."""
        dev.stats.record_logical(100)
        dev.append_many(0, ["x"] * 8)
        dev.reset_zone(0)
        dev.append_many(0, ["y"] * 4)
        assert dev.stats.dlwa == 1.0
