"""Unit tests for the ZNS zone state machine."""

import pytest

from repro.errors import ZoneStateError
from repro.flash.zone import Zone, ZoneState


class TestLifecycle:
    def test_new_zone_is_empty(self):
        z = Zone(zone_id=0, capacity_pages=8)
        assert z.state is ZoneState.EMPTY
        assert z.write_pointer == 0
        assert z.remaining_pages == 8

    def test_first_write_opens(self):
        z = Zone(0, 8)
        assert z.advance(1) == 0
        assert z.state is ZoneState.OPEN
        assert z.write_pointer == 1

    def test_fills_to_full(self):
        z = Zone(0, 4)
        z.advance(4)
        assert z.state is ZoneState.FULL
        assert z.remaining_pages == 0

    def test_write_past_capacity_rejected(self):
        z = Zone(0, 4)
        z.advance(3)
        with pytest.raises(ZoneStateError):
            z.advance(2)

    def test_write_to_full_rejected(self):
        z = Zone(0, 2)
        z.advance(2)
        with pytest.raises(ZoneStateError):
            z.advance(1)

    def test_reset_returns_to_empty(self):
        z = Zone(0, 4)
        z.advance(4)
        z.reset()
        assert z.state is ZoneState.EMPTY
        assert z.write_pointer == 0

    def test_finish_marks_full_without_writes(self):
        z = Zone(0, 4)
        z.advance(1)
        z.finish()
        assert z.state is ZoneState.FULL
        z.finish()  # idempotent
        assert z.state is ZoneState.FULL

    def test_advance_returns_old_pointer(self):
        z = Zone(0, 8)
        assert z.advance(3) == 0
        assert z.advance(2) == 3

    def test_nonpositive_advance_rejected(self):
        z = Zone(0, 8)
        with pytest.raises(ZoneStateError):
            z.advance(0)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ZoneStateError):
            Zone(0, 0)

    def test_is_writable(self):
        z = Zone(0, 1)
        assert z.is_writable
        z.advance(1)
        assert not z.is_writable
