"""Tests for the closed-loop replay harness (devsim frontend wiring)."""

import math

import numpy as np
import pytest

from repro.baselines.log_structured import LogStructuredCache
from repro.errors import ConfigError
from repro.flash.devsim import make_latency_model
from repro.harness.closed_loop import ClosedLoopResult, replay_closed_loop
from repro.harness.runner import replay
from repro.workloads.arrivals import fixed_arrivals
from repro.workloads.trace import OP_DELETE, OP_GET, OP_SET, Trace


def _trace(n=2000, num_keys=150, seed=11):
    rng = np.random.default_rng(seed)
    return Trace(
        ops=rng.choice(
            np.array([OP_GET, OP_SET, OP_DELETE], dtype=np.uint8),
            size=n,
            p=[0.8, 0.15, 0.05],
        ),
        keys=rng.integers(0, num_keys, size=n),
        sizes=rng.integers(40, 400, size=n),
        name="closed-loop-mix",
    )


def _engine(small_geometry, lane="event"):
    return LogStructuredCache(
        small_geometry, latency=make_latency_model(lane, num_channels=8)
    )


class TestReplayClosedLoop:
    def test_respects_queue_depth(self, small_geometry):
        trace = _trace()
        result = replay_closed_loop(
            _engine(small_geometry),
            trace,
            arrival_us=fixed_arrivals(len(trace), 200_000.0),
            queue_depth=4,
        )
        assert result.max_outstanding <= 4
        # One arrival + one completion event per request.
        assert result.events_fired == 2 * len(trace)
        assert (result.complete_us >= result.issue_us).all()
        assert (result.issue_us >= result.arrival_us).all()
        assert (result.sojourn_us >= 0.0).all()

    def test_single_class_counters_match_open_loop(self, small_geometry):
        # With one priority class the frontend issues strictly in
        # arrival order, so the engine sees the open-loop request
        # sequence and must land on identical aggregate counters.
        trace = _trace()
        closed = replay_closed_loop(
            _engine(small_geometry),
            trace,
            arrival_us=fixed_arrivals(len(trace), 100_000.0),
            queue_depth=8,
        )
        open_loop = replay(_engine(small_geometry), trace)
        assert closed.final.keys() == open_loop.final.keys()
        for key in closed.final:
            a, b = closed.final[key], open_loop.final[key]
            assert a == b or (
                isinstance(a, float) and math.isnan(a) and math.isnan(b)
            ), key

    def test_needs_a_latency_model(self, small_geometry):
        trace = _trace(n=10)
        with pytest.raises(ConfigError, match="latency model"):
            replay_closed_loop(
                LogStructuredCache(small_geometry),
                trace,
                arrival_us=fixed_arrivals(10, 1000.0),
            )

    def test_rejects_length_mismatches(self, small_geometry):
        trace = _trace(n=10)
        with pytest.raises(ConfigError):
            replay_closed_loop(
                _engine(small_geometry),
                trace,
                arrival_us=fixed_arrivals(9, 1000.0),
            )
        with pytest.raises(ConfigError):
            replay_closed_loop(
                _engine(small_geometry),
                trace,
                arrival_us=fixed_arrivals(10, 1000.0),
                class_ids=np.zeros(9, dtype=np.int64),
            )


class TestClassPercentiles:
    def _result(self):
        n = 8
        return ClosedLoopResult(
            engine_name="X",
            trace_name="t",
            num_requests=n,
            queue_depth=None,
            final={},
            arrival_us=np.arange(n, dtype=np.float64),
            issue_us=np.arange(n, dtype=np.float64),
            complete_us=np.arange(n, dtype=np.float64) + [10, 20, 30, 40, 50, 60, 70, 80],
            class_ids=np.array([0, 1, 0, 1, 0, 1, 0, 1]),
            class_names=("hi", "lo"),
        )

    def test_sojourn(self):
        assert self._result().sojourn_us.tolist() == [
            10, 20, 30, 40, 50, 60, 70, 80
        ]

    def test_window_and_class_filters(self):
        r = self._result()
        # Class 0 requests in the second half: sojourns 50 and 70.
        p = r.class_percentiles([50.0], window=(4, 8), class_id=0)
        assert p[50.0] == 60.0

    def test_get_only_filter(self):
        r = self._result()
        ops = np.array([OP_GET, OP_SET] * 4, dtype=np.uint8)
        p = r.class_percentiles([50.0], get_only_ops=ops)
        # GETs are indices 0, 2, 4, 6: sojourns 10/30/50/70.
        assert p[50.0] == 40.0

    def test_empty_selection_is_nan(self):
        r = self._result()
        p = r.class_percentiles([50.0, 99.0], class_id=7)
        assert math.isnan(p[50.0]) and math.isnan(p[99.0])
