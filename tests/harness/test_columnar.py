"""Byte-identity tests for the whole-trace columnar Log kernel.

The columnar lane (``harness/columnar.py``) must be indistinguishable
from the batched lane in every observable: final snapshot, sampled
series, latency recorder internals, write-rate windows, simulated
clock.  These tests drive it through ``replay(kernel="columnar")``
on crafted and Hypothesis-random traces, including the wrap/bail path
(columnar prefix + batched suffix) and every eligibility fallback.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.log_structured import LogStructuredCache
from repro.baselines.set_associative import SetAssociativeCache
from repro.flash.latency import LatencyModel
from repro.harness.columnar import _clock, log_kernel_eligible
from repro.harness.runner import replay
from repro.workloads.trace import OP_DELETE, OP_GET, OP_SET, Trace


def _assert_finals_identical(fa, fb):
    """Snapshot dict equality, nan-aware (nan == nan here)."""
    assert fa.keys() == fb.keys()
    for key in fa:
        va, vb = fa[key], fb[key]
        assert va == vb or (
            isinstance(va, float)
            and isinstance(vb, float)
            and math.isnan(va)
            and math.isnan(vb)
        ), f"{key}: {va!r} != {vb!r}"


def _assert_results_identical(a, b):
    """Every observable of two ReplayResults matches bit-for-bit."""
    _assert_finals_identical(a.final, b.final)
    assert a.series.keys() == b.series.keys()
    for name in a.series:
        for (xa, va), (xb, vb) in zip(
            a.series[name].as_rows(), b.series[name].as_rows()
        ):
            assert xa == xb
            assert va == vb or (math.isnan(va) and math.isnan(vb))
    assert a.latency._values == b.latency._values
    assert a.latency._window_bounds == b.latency._window_bounds
    if a.write_rate is None:
        assert b.write_rate is None
    else:
        assert a.write_rate.rates == b.write_rate.rates
    assert a.sim_seconds == b.sim_seconds
    assert a.num_requests == b.num_requests


def _mixed_trace(n=4000, num_keys=300, seed=7):
    """GET-heavy trace with SETs and DELETEs over a small key universe."""
    rng = np.random.default_rng(seed)
    ops = rng.choice(
        np.array([OP_GET, OP_SET, OP_DELETE], dtype=np.uint8),
        size=n,
        p=[0.8, 0.15, 0.05],
    )
    return Trace(
        ops=ops,
        keys=rng.integers(0, num_keys, size=n),
        sizes=rng.integers(40, 400, size=n),
        name="mixed",
    )


class TestColumnarParity:
    def test_plain_replay(self, small_geometry):
        trace = _mixed_trace()
        batched = replay(LogStructuredCache(small_geometry), trace)
        columnar = replay(
            LogStructuredCache(small_geometry), trace, kernel="columnar"
        )
        assert columnar.kernel == "columnar"
        _assert_results_identical(columnar, batched)

    def test_instrumented_replay(self, small_geometry):
        trace = _mixed_trace()
        kwargs = dict(
            sample_every=517,
            record_latency=True,
            mark_window_at=len(trace) // 3,
            write_rate_window_s=0.01,
        )
        batched = replay(LogStructuredCache(small_geometry), trace, **kwargs)
        columnar = replay(
            LogStructuredCache(small_geometry),
            trace,
            kernel="columnar",
            **kwargs,
        )
        _assert_results_identical(columnar, batched)

    def test_engine_end_state_identical(self, small_geometry):
        trace = _mixed_trace()
        eng_b = LogStructuredCache(small_geometry)
        eng_c = LogStructuredCache(small_geometry)
        replay(eng_b, trace)
        replay(eng_c, trace, kernel="columnar")
        _assert_finals_identical(eng_c.metrics_snapshot(), eng_b.metrics_snapshot())
        assert eng_c.object_count() == eng_b.object_count()

    def test_wrapping_trace_bails_to_batched_suffix(self, tiny_geometry):
        """A trace that wraps the device replays columnar-prefix +
        batched-suffix, still byte-identical (evictions included)."""
        trace = _mixed_trace(n=12_000, num_keys=2_000, seed=3)
        batched = replay(LogStructuredCache(tiny_geometry), trace)
        columnar = replay(
            LogStructuredCache(tiny_geometry), trace, kernel="columnar"
        )
        # The point of this cell: evictions actually happened.
        assert batched.final["evicted_objects"] > 0
        _assert_results_identical(columnar, batched)

    def test_wrapping_instrumented(self, tiny_geometry):
        trace = _mixed_trace(n=12_000, num_keys=2_000, seed=3)
        kwargs = dict(
            record_latency=True, mark_window_at=6_000, sample_every=997
        )
        batched = replay(LogStructuredCache(tiny_geometry), trace, **kwargs)
        columnar = replay(
            LogStructuredCache(tiny_geometry),
            trace,
            kernel="columnar",
            **kwargs,
        )
        _assert_results_identical(columnar, batched)

    @given(
        ops=st.lists(st.sampled_from([OP_GET, OP_SET, OP_DELETE]),
                     min_size=1, max_size=120),
        seed=st.integers(0, 2**31 - 1),
        num_keys=st.integers(1, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_traces_identical(self, ops, seed, num_keys):
        from repro.flash.geometry import FlashGeometry

        tiny_geometry = FlashGeometry(
            page_size=4096, pages_per_block=16, num_blocks=8, blocks_per_zone=1
        )
        rng = np.random.default_rng(seed)
        n = len(ops)
        trace = Trace(
            ops=np.asarray(ops, dtype=np.uint8),
            keys=rng.integers(0, num_keys, size=n),
            sizes=rng.integers(1, 500, size=n),
        )
        batched = replay(
            LogStructuredCache(tiny_geometry), trace, sample_every=17
        )
        columnar = replay(
            LogStructuredCache(tiny_geometry),
            trace,
            sample_every=17,
            kernel="columnar",
        )
        _assert_results_identical(columnar, batched)


class TestKernelCache:
    def test_decision_columns_cached_on_trace(self, small_geometry):
        trace = _mixed_trace()
        assert trace._kernel_cache == {}
        replay(LogStructuredCache(small_geometry), trace, kernel="columnar")
        assert "log-links" in trace._kernel_cache
        assert any(
            isinstance(k, tuple) and k[0] == "log-plan"
            for k in trace._kernel_cache
        )
        links = trace._kernel_cache["log-links"]
        second = replay(
            LogStructuredCache(small_geometry), trace, kernel="columnar"
        )
        # Reused, not recomputed — and the replay stays identical.
        assert trace._kernel_cache["log-links"] is links
        first = replay(LogStructuredCache(small_geometry), trace)
        _assert_results_identical(second, first)

    def test_clock_matches_per_request_accumulation(self):
        trace = _mixed_trace(n=1000)
        step = 1e6 / 50_000.0
        clock = _clock(trace, step)
        now = 0.0
        expected = []
        for _ in range(len(trace)):
            now += step
            expected.append(now)
        assert clock.tolist() == expected


class TestEligibility:
    def test_virgin_log_engine_eligible(self, small_geometry):
        assert log_kernel_eligible(
            LogStructuredCache(small_geometry), _mixed_trace(), None
        )

    def test_non_log_engine_ineligible(self, small_geometry):
        assert not log_kernel_eligible(
            SetAssociativeCache(small_geometry), _mixed_trace(), None
        )

    def test_warm_engine_ineligible(self, small_geometry):
        engine = LogStructuredCache(small_geometry)
        engine.insert(1, 100)
        assert not log_kernel_eligible(engine, _mixed_trace(), None)

    def test_latency_model_ineligible(self, small_geometry):
        engine = LogStructuredCache(small_geometry, latency=LatencyModel())
        assert not log_kernel_eligible(engine, _mixed_trace(), None)

    def test_fault_plan_ineligible(self, small_geometry):
        from repro.faults.plan import FaultPlan

        assert not log_kernel_eligible(
            LogStructuredCache(small_geometry), _mixed_trace(), FaultPlan()
        )

    def test_oversized_object_ineligible(self, small_geometry):
        trace = Trace(
            ops=np.array([OP_SET], dtype=np.uint8),
            keys=np.array([1]),
            sizes=np.array([small_geometry.page_size]),
        )
        assert not log_kernel_eligible(
            LogStructuredCache(small_geometry), trace, None
        )

    def test_empty_trace_ineligible(self, small_geometry):
        trace = Trace(
            ops=np.zeros(0, dtype=np.uint8),
            keys=np.zeros(0, dtype=np.int64),
            sizes=np.zeros(0, dtype=np.int64),
        )
        assert not log_kernel_eligible(
            LogStructuredCache(small_geometry), trace, None
        )

    def test_ineligible_combination_falls_back_identically(
        self, small_geometry
    ):
        """kernel="columnar" on a non-Log engine replays through the
        batched loop (fed the precomputed offset column), identically."""
        trace = _mixed_trace()
        reference = replay(SetAssociativeCache(small_geometry), trace)
        fallback = replay(
            SetAssociativeCache(small_geometry), trace, kernel="columnar"
        )
        _assert_results_identical(fallback, reference)

    def test_unknown_kernel_rejected(self, small_geometry):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            replay(
                LogStructuredCache(small_geometry),
                _mixed_trace(),
                kernel="bogus",
            )
