"""Byte-identity tests for the whole-trace columnar Nemo kernel.

Mirrors ``test_columnar.py`` for the Nemo entry of ``KERNEL_REGISTRY``:
the kernel must be indistinguishable from the batched lane in every
observable, in *both* filter modes (the calibrated statistical PBFG
model and ``use_real_filters=True``), across the flush-free fast case,
the flush-heavy completed case, and the pool-exhaustion bail (columnar
prefix + batched suffix).  Also pins the registry dispatch itself:
``kernel_for`` / ``kernel_ineligible_reason`` and the fallback note the
runner emits for unregistered engines.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.log_structured import LogStructuredCache
from repro.baselines.set_associative import SetAssociativeCache
from repro.core.config import NemoConfig
from repro.core.nemo import NemoCache
from repro.flash.geometry import FlashGeometry
from repro.flash.latency import LatencyModel
from repro.harness.columnar import (
    KERNEL_REGISTRY,
    kernel_eligible,
    kernel_for,
    kernel_ineligible_reason,
    nemo_kernel_eligible,
    nemo_kernel_ineligible_reason,
)
from repro.harness.runner import replay
from repro.workloads.trace import OP_DELETE, OP_GET, OP_SET, Trace


def _assert_finals_identical(fa, fb):
    """Snapshot dict equality, nan-aware (nan == nan here)."""
    assert fa.keys() == fb.keys()
    for key in fa:
        va, vb = fa[key], fb[key]
        assert va == vb or (
            isinstance(va, float)
            and isinstance(vb, float)
            and math.isnan(va)
            and math.isnan(vb)
        ), f"{key}: {va!r} != {vb!r}"


def _assert_results_identical(a, b):
    """Every observable of two ReplayResults matches bit-for-bit."""
    _assert_finals_identical(a.final, b.final)
    assert a.series.keys() == b.series.keys()
    for name in a.series:
        for (xa, va), (xb, vb) in zip(
            a.series[name].as_rows(), b.series[name].as_rows()
        ):
            assert xa == xb
            assert va == vb or (math.isnan(va) and math.isnan(vb))
    assert a.latency._values == b.latency._values
    assert a.latency._window_bounds == b.latency._window_bounds
    if a.write_rate is None:
        assert b.write_rate is None
    else:
        assert a.write_rate.rates == b.write_rate.rates
    assert a.sim_seconds == b.sim_seconds
    assert a.num_requests == b.num_requests


def _mixed_trace(n=4000, num_keys=300, seed=7, hi=400, p=(0.8, 0.15, 0.05)):
    """GET-heavy trace with SETs and DELETEs over a small key universe."""
    rng = np.random.default_rng(seed)
    ops = rng.choice(
        np.array([OP_GET, OP_SET, OP_DELETE], dtype=np.uint8),
        size=n,
        p=list(p),
    )
    return Trace(
        ops=ops,
        keys=rng.integers(0, num_keys, size=n),
        sizes=rng.integers(40, hi, size=n),
        name="mixed",
    )


def _flush_trace():
    """SET-heavy trace that drives flushes (pool SGs, WA > 0) without
    exhausting the small geometry's free zones — the kernel completes."""
    return _mixed_trace(
        n=8_000, num_keys=1_500, seed=7, hi=700, p=(0.6, 0.35, 0.05)
    )


def _eviction_trace():
    """Working set far beyond the tiny geometry: fills the SG pool and
    forces the kernel to bail into the batched suffix (early evictions,
    writeback, pool churn all happen past the bail point)."""
    return _mixed_trace(n=12_000, num_keys=2_000, seed=3)


FILTER_MODES = ["statistical", "real"]


def _config(mode: str) -> NemoConfig:
    cfg = NemoConfig(
        flush_threshold=4, sgs_per_index_group=3, bf_capacity_per_set=20
    )
    if mode == "real":
        cfg = dataclasses.replace(cfg, use_real_filters=True)
    return cfg


@pytest.mark.parametrize("mode", FILTER_MODES)
class TestNemoColumnarParity:
    def test_flush_heavy_replay(self, small_geometry, mode):
        trace = _flush_trace()
        batched = replay(NemoCache(small_geometry, _config(mode)), trace)
        columnar = replay(
            NemoCache(small_geometry, _config(mode)),
            trace,
            kernel="columnar",
        )
        assert columnar.kernel == "columnar"
        assert columnar.notes == []
        # The point of this cell: SGs actually flushed to flash.
        assert batched.final["pool_sgs"] > 0
        assert batched.final["wa"] > 0
        _assert_results_identical(columnar, batched)

    def test_instrumented_replay(self, small_geometry, mode):
        trace = _flush_trace()
        kwargs = dict(
            sample_every=517,
            record_latency=True,
            mark_window_at=len(trace) // 3,
            write_rate_window_s=0.01,
        )
        batched = replay(
            NemoCache(small_geometry, _config(mode)), trace, **kwargs
        )
        columnar = replay(
            NemoCache(small_geometry, _config(mode)),
            trace,
            kernel="columnar",
            **kwargs,
        )
        _assert_results_identical(columnar, batched)

    def test_read_side_metrics_sampled(self, small_geometry, mode):
        """Sampling consult-side metrics forces the kernel's read
        settlement at every boundary (the deferral gate switches off)."""
        kwargs = dict(
            sample_every=331,
            sampled_metrics=(
                "wa",
                "host_read_bytes",
                "false_positive_reads",
                "pbfg_pool_read_ratio",
            ),
        )
        trace = _flush_trace()
        batched = replay(
            NemoCache(small_geometry, _config(mode)), trace, **kwargs
        )
        columnar = replay(
            NemoCache(small_geometry, _config(mode)),
            trace,
            kernel="columnar",
            **kwargs,
        )
        _assert_results_identical(columnar, batched)

    def test_engine_end_state_identical(self, small_geometry, mode):
        trace = _flush_trace()
        eng_b = NemoCache(small_geometry, _config(mode))
        eng_c = NemoCache(small_geometry, _config(mode))
        replay(eng_b, trace)
        replay(eng_c, trace, kernel="columnar")
        _assert_finals_identical(
            eng_c.metrics_snapshot(), eng_b.metrics_snapshot()
        )
        assert eng_c.object_count() == eng_b.object_count()
        assert len(eng_c.pool) == len(eng_b.pool)

    def test_pool_exhaustion_bails_to_batched_suffix(
        self, tiny_geometry, mode
    ):
        trace = _eviction_trace()
        batched = replay(NemoCache(tiny_geometry, _config(mode)), trace)
        columnar = replay(
            NemoCache(tiny_geometry, _config(mode)),
            trace,
            kernel="columnar",
        )
        # The point of this cell: the pool churned (bail was taken).
        assert batched.final["evicted_objects"] > 0
        assert batched.final["writeback_objects"] > 0
        _assert_results_identical(columnar, batched)

    def test_bail_instrumented(self, tiny_geometry, mode):
        trace = _eviction_trace()
        kwargs = dict(
            record_latency=True, mark_window_at=6_000, sample_every=997
        )
        batched = replay(
            NemoCache(tiny_geometry, _config(mode)), trace, **kwargs
        )
        columnar = replay(
            NemoCache(tiny_geometry, _config(mode)),
            trace,
            kernel="columnar",
            **kwargs,
        )
        _assert_results_identical(columnar, batched)


class TestNemoRandomTraces:
    @given(
        ops=st.lists(
            st.sampled_from([OP_GET, OP_SET, OP_DELETE]),
            min_size=1,
            max_size=120,
        ),
        seed=st.integers(0, 2**31 - 1),
        num_keys=st.integers(1, 30),
        real_filters=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_traces_identical(
        self, ops, seed, num_keys, real_filters
    ):
        tiny_geometry = FlashGeometry(
            page_size=4096, pages_per_block=16, num_blocks=8, blocks_per_zone=1
        )
        config = _config("real" if real_filters else "statistical")
        rng = np.random.default_rng(seed)
        n = len(ops)
        trace = Trace(
            ops=np.asarray(ops, dtype=np.uint8),
            keys=rng.integers(0, num_keys, size=n),
            sizes=rng.integers(1, 1000, size=n),
        )
        batched = replay(
            NemoCache(tiny_geometry, config), trace, sample_every=17
        )
        columnar = replay(
            NemoCache(tiny_geometry, config),
            trace,
            sample_every=17,
            kernel="columnar",
        )
        _assert_results_identical(columnar, batched)


class TestNemoKernelCache:
    def test_decision_columns_cached_on_trace(self, small_geometry):
        trace = _flush_trace()
        assert trace._kernel_cache == {}
        replay(
            NemoCache(small_geometry, _config("statistical")),
            trace,
            kernel="columnar",
        )
        assert "nemo-chain" in trace._kernel_cache
        assert any(
            isinstance(k, tuple) and k[0] == "nemo-ins-offs"
            for k in trace._kernel_cache
        )
        chain = trace._kernel_cache["nemo-chain"]
        second = replay(
            NemoCache(small_geometry, _config("statistical")),
            trace,
            kernel="columnar",
        )
        # Reused, not recomputed — and the replay stays identical.
        assert trace._kernel_cache["nemo-chain"] is chain
        first = replay(NemoCache(small_geometry, _config("statistical")), trace)
        _assert_results_identical(second, first)


class TestNemoEligibility:
    def test_virgin_nemo_engine_eligible(self, small_geometry):
        assert nemo_kernel_eligible(
            NemoCache(small_geometry, _config("statistical")),
            _flush_trace(),
            None,
        )

    def test_non_nemo_engine_ineligible(self, small_geometry):
        reason = nemo_kernel_ineligible_reason(
            SetAssociativeCache(small_geometry), _flush_trace(), None
        )
        assert reason is not None and "NemoCache" in reason

    def test_warm_engine_ineligible(self, small_geometry):
        engine = NemoCache(small_geometry, _config("statistical"))
        engine.insert(1, 100)
        assert not nemo_kernel_eligible(engine, _flush_trace(), None)

    def test_latency_model_ineligible(self, small_geometry):
        engine = NemoCache(
            small_geometry, _config("statistical"), latency=LatencyModel()
        )
        assert not nemo_kernel_eligible(engine, _flush_trace(), None)

    def test_fault_plan_ineligible(self, small_geometry):
        from repro.faults.plan import FaultPlan

        assert not nemo_kernel_eligible(
            NemoCache(small_geometry, _config("statistical")),
            _flush_trace(),
            FaultPlan(),
        )

    def test_oversized_object_ineligible(self, small_geometry):
        trace = Trace(
            ops=np.array([OP_SET], dtype=np.uint8),
            keys=np.array([1]),
            sizes=np.array([small_geometry.page_size + 1]),
        )
        assert not nemo_kernel_eligible(
            NemoCache(small_geometry, _config("statistical")), trace, None
        )

    def test_empty_trace_ineligible(self, small_geometry):
        trace = Trace(
            ops=np.zeros(0, dtype=np.uint8),
            keys=np.zeros(0, dtype=np.int64),
            sizes=np.zeros(0, dtype=np.int64),
        )
        assert not nemo_kernel_eligible(
            NemoCache(small_geometry, _config("statistical")), trace, None
        )


class TestKernelRegistry:
    def test_registered_engines(self):
        assert LogStructuredCache in KERNEL_REGISTRY
        assert NemoCache in KERNEL_REGISTRY
        assert KERNEL_REGISTRY[NemoCache].name == "nemo"
        assert KERNEL_REGISTRY[LogStructuredCache].name == "log"

    def test_kernel_for_dispatches_by_type(self, small_geometry):
        nemo = NemoCache(small_geometry, _config("statistical"))
        assert kernel_for(nemo) is KERNEL_REGISTRY[NemoCache]
        assert kernel_for(SetAssociativeCache(small_geometry)) is None

    def test_registered_engines_eligible(self, small_geometry):
        trace = _flush_trace()
        assert kernel_eligible(
            NemoCache(small_geometry, _config("statistical")), trace, None
        )
        assert kernel_eligible(LogStructuredCache(small_geometry), trace, None)

    def test_unregistered_engine_reason_lists_registry(self, small_geometry):
        reason = kernel_ineligible_reason(
            SetAssociativeCache(small_geometry), _flush_trace(), None
        )
        assert reason is not None
        assert "has no whole-trace columnar kernel" in reason
        assert "LogStructuredCache" in reason and "NemoCache" in reason

    def test_unregistered_engine_falls_back_with_note(self, small_geometry):
        trace = _flush_trace()
        reference = replay(SetAssociativeCache(small_geometry), trace)
        fallback = replay(
            SetAssociativeCache(small_geometry), trace, kernel="columnar"
        )
        assert len(fallback.notes) == 1
        assert "falling back to batched dispatch" in fallback.notes[0]
        _assert_results_identical(fallback, reference)

    def test_ineligible_nemo_falls_back_with_note(self, small_geometry):
        """A registered engine that fails eligibility (warm state) also
        demotes to batched dispatch with the reason in the note."""
        trace = _flush_trace()
        warm = NemoCache(small_geometry, _config("statistical"))
        warm.insert(1, 100)
        result = replay(warm, trace, kernel="columnar")
        assert len(result.notes) == 1
        assert "not virgin" in result.notes[0]
