"""Unit tests for metric series and windowed rates."""

import pytest

from repro.errors import ConfigError
from repro.harness.metrics import MetricSeries, WindowedRate


class TestMetricSeries:
    def test_record_and_last(self):
        s = MetricSeries("wa")
        s.record(1, 2.0)
        s.record(2, 3.0)
        assert s.last() == 3.0
        assert len(s) == 2
        assert s.as_rows() == [(1, 2.0), (2, 3.0)]

    def test_out_of_order_rejected(self):
        s = MetricSeries("x")
        s.record(5, 1.0)
        with pytest.raises(ConfigError):
            s.record(4, 1.0)

    def test_deltas(self):
        s = MetricSeries("bytes")
        for x, v in [(1, 10.0), (2, 30.0), (3, 35.0)]:
            s.record(x, v)
        d = s.deltas()
        assert d.as_rows() == [(2, 20.0), (3, 5.0)]

    def test_empty_last_is_nan(self):
        import math

        assert math.isnan(MetricSeries("x").last())


class TestWindowedRate:
    def test_buckets_by_window(self):
        wr = WindowedRate(window=60.0)
        wr.update(0.0, 0)
        wr.update(59.0, 100)
        wr.update(61.0, 150)
        assert len(wr.rates) == 1
        t, delta = wr.rates[0]
        assert t == 60.0
        assert delta == 150  # counter value when the window closed

    def test_multiple_windows_at_once(self):
        wr = WindowedRate(window=10.0)
        wr.update(0.0, 0)
        wr.update(35.0, 300)
        assert len(wr.rates) == 3

    def test_finish_scales_partial_window(self):
        wr = WindowedRate(window=60.0)
        wr.update(0.0, 0)
        wr.update(30.0, 100)
        wr.finish(30.0)
        t, delta = wr.rates[-1]
        assert delta == pytest.approx(200.0)  # 100 bytes in half a window

    def test_zero_window_rejected(self):
        with pytest.raises(ConfigError):
            WindowedRate(0)

    def test_finish_without_updates_is_noop(self):
        wr = WindowedRate(60.0)
        wr.finish(100.0)
        assert wr.rates == []
