"""Tests for the process-level experiment fan-out.

The parity tests compare ``jobs=1`` against ``jobs=2`` on the *same*
cells; determinism is a hard requirement (DESIGN.md §5), so the results
must be identical — not approximately equal.

Cell functions must be spawn-picklable, so tests use either functions
from the :mod:`operator` module or real experiment cells (whose
functions live at module level under ``repro.*``).
"""

from __future__ import annotations

import operator

import pytest

from repro.experiments import fig12_wa_main
from repro.harness.parallel import Cell, CellFailure, default_jobs, run_cells


class TestRunCells:
    def test_results_in_cell_order(self):
        cells = [
            Cell(f"add/{i}", operator.add, (i, 100)) for i in range(6)
        ]
        assert run_cells(cells, jobs=1) == [100 + i for i in range(6)]

    def test_parallel_matches_serial(self):
        cells = [Cell(f"mul/{i}", operator.mul, (i, 7)) for i in range(8)]
        assert run_cells(cells, jobs=2) == run_cells(cells, jobs=1)

    def test_empty_and_single(self):
        assert run_cells([], jobs=4) == []
        assert run_cells([Cell("one", operator.neg, (5,))], jobs=4) == [-5]

    def test_jobs_none_uses_default(self):
        cells = [Cell("neg", operator.neg, (3,))]
        assert run_cells(cells, jobs=None) == [-3]
        assert default_jobs() >= 1

    def test_kwargs_passed_through(self):
        cells = [Cell("int", int, ("ff",), {"base": 16})]
        assert run_cells(cells, jobs=1) == [255]


class TestFailurePropagation:
    def test_serial_failure_names_cell(self):
        cells = [
            Cell("ok", operator.add, (1, 1)),
            Cell("boom/div0", operator.floordiv, (1, 0)),
        ]
        with pytest.raises(CellFailure, match="boom/div0"):
            run_cells(cells, jobs=1)

    def test_parallel_failure_names_cell(self):
        cells = [
            Cell("ok/0", operator.add, (1, 1)),
            Cell("boom/div0", operator.floordiv, (1, 0)),
            Cell("ok/1", operator.add, (2, 2)),
        ]
        with pytest.raises(CellFailure) as excinfo:
            run_cells(cells, jobs=2)
        assert excinfo.value.cell_id == "boom/div0"
        assert "ZeroDivisionError" in str(excinfo.value)

    def test_unpicklable_falls_back_to_serial(self):
        # A lambda cannot be pickled for spawn workers; run_cells must
        # degrade to in-process execution rather than fail.
        cells = [Cell(f"lambda/{i}", lambda i=i: i * 2) for i in range(3)]
        assert run_cells(cells, jobs=2) == [0, 2, 4]


class TestExperimentCellParity:
    def test_fig12_cells_identical_across_jobs(self):
        cells = fig12_wa_main.cells("micro")
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert parallel == serial
        # And the assembled figure is the same object graph either way.
        from_parallel = fig12_wa_main.assemble(parallel)
        from_serial = fig12_wa_main.assemble(serial)
        assert from_parallel.main_rows == from_serial.main_rows
        assert from_parallel.variant_rows == from_serial.variant_rows
