"""Unit + property tests for latency percentile tracking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.harness.percentile import LatencyRecorder, StreamingQuantile


class TestLatencyRecorder:
    def test_empty_is_nan(self):
        rec = LatencyRecorder()
        assert np.isnan(rec.percentile(50))
        assert np.isnan(rec.mean())

    def test_exact_percentiles(self):
        rec = LatencyRecorder()
        for v in range(1, 101):
            rec.record(float(v))
        assert rec.percentile(50) == pytest.approx(50.5)
        assert rec.percentile(99) == pytest.approx(99.01, abs=0.1)

    def test_percentiles_batch(self):
        rec = LatencyRecorder()
        for v in (1.0, 2.0, 3.0):
            rec.record(v)
        p = rec.percentiles([0.0, 100.0])
        assert p[0.0] == 1.0
        assert p[100.0] == 3.0

    def test_windows(self):
        rec = LatencyRecorder()
        for v in (1.0, 1.0, 1.0):
            rec.record(v)
        rec.mark_window()
        for v in (9.0, 9.0, 9.0):
            rec.record(v)
        before, after = rec.window_percentiles([50.0])
        assert before[50.0] == 1.0
        assert after[50.0] == 9.0

    def test_empty_window_is_nan(self):
        rec = LatencyRecorder()
        rec.record(1.0)
        rec.mark_window()
        windows = rec.window_percentiles([50.0])
        assert windows[0][50.0] == 1.0
        assert np.isnan(windows[1][50.0])

    def test_len(self):
        rec = LatencyRecorder()
        rec.record(1.0)
        assert len(rec) == 1

    def test_record_many_matches_record_loop(self):
        bulk = LatencyRecorder()
        scalar = LatencyRecorder()
        values = [3.0, 1.0, 2.0, 2.0]
        bulk.record_many(values)
        for v in values:
            scalar.record(v)
        assert bulk._values == scalar._values
        assert bulk._window_bounds == scalar._window_bounds


class TestLatencyRecorderMerge:
    def test_merge_concatenates_within_windows(self):
        a = LatencyRecorder()
        a.record_many([1.0, 2.0])
        a.mark_window()
        a.record_many([3.0])
        b = LatencyRecorder()
        b.record_many([10.0])
        b.mark_window()
        b.record_many([20.0, 30.0])
        a.merge(b)
        assert a._values == [1.0, 2.0, 10.0, 3.0, 20.0, 30.0]
        assert a._window_bounds == [0, 3]

    def test_merge_with_missing_windows(self):
        a = LatencyRecorder()
        a.record_many([1.0])
        b = LatencyRecorder()
        b.record_many([2.0])
        b.mark_window()
        b.record_many([3.0])
        a.merge(b)
        # a has one window, b two: window 0 merges both first windows,
        # window 1 holds only b's tail.
        assert a._values == [1.0, 2.0, 3.0]
        assert a._window_bounds == [0, 2]

    def test_merge_empty_into_empty(self):
        a = LatencyRecorder()
        a.merge(LatencyRecorder())
        assert len(a) == 0
        assert np.isnan(a.percentile(50))


_samples = st.lists(
    st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=80,
)


def _build(windows: list[list[float]]) -> LatencyRecorder:
    rec = LatencyRecorder()
    for i, window in enumerate(windows):
        if i:
            rec.mark_window()
        rec.record_many(window)
    return rec


@settings(max_examples=100, deadline=None)
@given(
    a_windows=st.lists(_samples, min_size=1, max_size=4),
    b_windows=st.lists(_samples, min_size=1, max_size=4),
    qs=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=3),
)
def test_merge_matches_numpy_on_concatenated_samples(a_windows, b_windows, qs):
    """Merged percentiles == numpy over the window-wise concatenations."""
    merged = _build(a_windows)
    merged.merge(_build(b_windows))

    n_windows = max(len(a_windows), len(b_windows))
    concat = [
        (a_windows[w] if w < len(a_windows) else [])
        + (b_windows[w] if w < len(b_windows) else [])
        for w in range(n_windows)
    ]

    flat = [v for chunk in concat for v in chunk]
    for q in qs:
        expected = float(np.percentile(flat, q)) if flat else float("nan")
        got = merged.percentile(q)
        assert got == expected or (np.isnan(got) and np.isnan(expected))

    per_window = merged.window_percentiles(qs)
    assert len(per_window) == n_windows
    for chunk, got_dict in zip(concat, per_window):
        for q in qs:
            expected = float(np.percentile(chunk, q)) if chunk else float("nan")
            got = got_dict[q]
            assert got == expected or (np.isnan(got) and np.isnan(expected))


class TestStreamingQuantile:
    def test_rejects_bad_q(self):
        for q in (0.0, 1.0, -0.1):
            with pytest.raises(ConfigError):
                StreamingQuantile(q)

    def test_empty_is_nan(self):
        assert np.isnan(StreamingQuantile(0.5).value)

    def test_small_samples_exact(self):
        sq = StreamingQuantile(0.5)
        for v in (1.0, 5.0, 3.0):
            sq.add(v)
        assert sq.value == 3.0

    def test_median_of_uniform(self):
        rng = np.random.default_rng(0)
        sq = StreamingQuantile(0.5)
        data = rng.random(20_000)
        for v in data:
            sq.add(float(v))
        assert sq.value == pytest.approx(0.5, abs=0.02)

    def test_p99_of_exponential(self):
        rng = np.random.default_rng(1)
        sq = StreamingQuantile(0.99)
        data = rng.exponential(1.0, 50_000)
        for v in data:
            sq.add(float(v))
        assert sq.value == pytest.approx(np.percentile(data, 99), rel=0.1)


@settings(max_examples=20, deadline=None)
@given(
    data=st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=50, max_size=500),
    q=st.sampled_from([0.25, 0.5, 0.9]),
)
def test_p2_stays_within_sample_range(data, q):
    sq = StreamingQuantile(q)
    for v in data:
        sq.add(v)
    assert min(data) <= sq.value <= max(data)
