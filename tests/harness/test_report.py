"""Unit tests for report formatting helpers."""

from collections import Counter

import math

from repro.harness.report import (
    cdf_from_counter,
    cdf_value_at,
    format_series,
    format_table,
    mean_from_counter,
)


class TestTables:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1.5], ["long-name", 22.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out

    def test_non_float_cells_passthrough(self):
        out = format_table(["x"], [["abc"], [7]])
        assert "abc" in out and "7" in out


class TestCDF:
    def test_points_monotone(self):
        hist = Counter({1: 5, 2: 3, 4: 2})
        cdf = cdf_from_counter(hist)
        assert cdf == [(1, 0.5), (2, 0.8), (4, 1.0)]

    def test_empty(self):
        assert cdf_from_counter(Counter()) == []

    def test_value_at(self):
        cdf = [(1, 0.5), (3, 1.0)]
        assert cdf_value_at(cdf, 0) == 0.0
        assert cdf_value_at(cdf, 1) == 0.5
        assert cdf_value_at(cdf, 2) == 0.5
        assert cdf_value_at(cdf, 5) == 1.0

    def test_mean(self):
        hist = Counter({1: 1, 3: 1})
        assert mean_from_counter(hist) == 2.0
        assert math.isnan(mean_from_counter(Counter()))


class TestSeries:
    def test_format_series(self):
        out = format_series([1, 2], [0.5, 0.6], x_label="ops", y_label="wa")
        assert "ops" in out and "wa" in out
        assert "0.5" in out
