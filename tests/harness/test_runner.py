"""Integration tests for the replay harness."""

import numpy as np
import pytest

from repro.baselines.log_structured import LogStructuredCache
from repro.core.config import NemoConfig
from repro.core.nemo import NemoCache
from repro.errors import ConfigError
from repro.flash.latency import LatencyModel
from repro.harness.runner import replay
from repro.workloads.trace import OP_DELETE, OP_GET, OP_SET, Trace


def make_trace(ops_keys_sizes):
    ops, keys, sizes = zip(*ops_keys_sizes)
    return Trace(
        ops=np.array(ops, dtype=np.uint8),
        keys=np.array(keys),
        sizes=np.array(sizes),
        name="unit",
    )


@pytest.fixture
def engine(small_geometry):
    return LogStructuredCache(small_geometry)


class TestSemantics:
    def test_get_miss_admits(self, engine):
        trace = make_trace([(OP_GET, 1, 100), (OP_GET, 1, 100)])
        result = replay(engine, trace)
        assert engine.counters.lookups == 2
        assert engine.counters.hits == 1  # read-through admission
        assert result.miss_ratio == 0.5

    def test_set_inserts_without_lookup(self, engine):
        trace = make_trace([(OP_SET, 1, 100)])
        replay(engine, trace)
        assert engine.counters.lookups == 0
        assert engine.object_count() == 1

    def test_delete_removes(self, engine):
        trace = make_trace(
            [(OP_SET, 1, 100), (OP_DELETE, 1, 100), (OP_GET, 1, 100)]
        )
        replay(engine, trace)
        assert engine.counters.deletes == 1
        assert engine.counters.hits == 0

    def test_rejects_bad_rate(self, engine):
        with pytest.raises(ConfigError):
            replay(engine, make_trace([(OP_GET, 1, 100)]), arrival_rate=0)


class TestCollection:
    def test_samples_recorded(self, engine, small_trace):
        result = replay(engine, small_trace, sample_every=5000)
        assert len(result.series["wa"]) >= len(small_trace) // 5000
        assert result.final["wa"] == pytest.approx(
            engine.write_amplification, nan_ok=True
        )

    def test_latency_recorded_with_model(self, small_geometry, small_trace):
        engine = NemoCache(
            small_geometry,
            NemoConfig(flush_threshold=4, sgs_per_index_group=3),
            latency=LatencyModel(),
        )
        result = replay(engine, small_trace, record_latency=True)
        gets = int((small_trace.ops == OP_GET).sum())
        assert len(result.latency) == gets
        assert result.latency.percentile(99) >= 0.0

    def test_window_marking(self, engine, small_trace):
        result = replay(
            engine,
            small_trace,
            record_latency=True,
            mark_window_at=len(small_trace) // 2,
        )
        windows = result.latency.window_percentiles([50.0])
        assert len(windows) == 2

    def test_write_rate_collection(self, engine, small_trace):
        result = replay(engine, small_trace, write_rate_window_s=0.1)
        assert result.write_rate is not None
        assert result.write_rate.rates

    def test_summary_mentions_engine(self, engine, small_trace):
        result = replay(engine, small_trace)
        assert "Log" in result.summary()
        assert "WA" in result.summary()

    def test_sim_clock_advances(self, engine):
        trace = make_trace([(OP_GET, 1, 100)] * 100)
        result = replay(engine, trace, arrival_rate=1000.0)
        assert result.sim_seconds == pytest.approx(0.1)
