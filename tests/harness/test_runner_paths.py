"""Fast-path vs instrumented-path equivalence for ``replay``.

``replay`` dispatches to a branch-free inner loop when latency is not
recorded and to a fully-instrumented loop when it is.  Both must
produce identical cache metrics — the only permitted difference is the
presence of latency samples.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.log_structured import LogStructuredCache
from repro.harness.runner import replay
from repro.workloads.trace import OP_GET


def _series_rows(result):
    return {name: s.as_rows() for name, s in result.series.items()}


def _assert_metrics_equal(fast, instrumented):
    assert fast.final == instrumented.final
    fast_rows = _series_rows(fast)
    inst_rows = _series_rows(instrumented)
    assert fast_rows.keys() == inst_rows.keys()
    for name in fast_rows:
        for (xa, va), (xb, vb) in zip(fast_rows[name], inst_rows[name]):
            assert xa == xb
            assert va == vb or (math.isnan(va) and math.isnan(vb))


class TestPathEquivalence:
    def test_final_and_series_identical(self, small_geometry, small_trace):
        fast = replay(
            LogStructuredCache(small_geometry),
            small_trace,
            sample_every=5_000,
        )
        instrumented = replay(
            LogStructuredCache(small_geometry),
            small_trace,
            sample_every=5_000,
            record_latency=True,
        )
        _assert_metrics_equal(fast, instrumented)

    def test_latency_only_on_instrumented_path(self, small_geometry, small_trace):
        fast = replay(LogStructuredCache(small_geometry), small_trace)
        instrumented = replay(
            LogStructuredCache(small_geometry),
            small_trace,
            record_latency=True,
        )
        assert len(fast.latency) == 0
        num_gets = int(np.count_nonzero(small_trace.ops == OP_GET))
        assert len(instrumented.latency) == num_gets

    def test_window_marking_identical(self, small_geometry, small_trace):
        mark = len(small_trace) // 2
        fast = replay(
            LogStructuredCache(small_geometry),
            small_trace,
            mark_window_at=mark,
        )
        instrumented = replay(
            LogStructuredCache(small_geometry),
            small_trace,
            mark_window_at=mark,
            record_latency=True,
        )
        _assert_metrics_equal(fast, instrumented)

    def test_write_rate_windows_identical(self, small_geometry, small_trace):
        kwargs = dict(
            sample_every=7_000,
            arrival_rate=50_000.0,
            write_rate_window_s=0.1,
        )
        fast = replay(LogStructuredCache(small_geometry), small_trace, **kwargs)
        instrumented = replay(
            LogStructuredCache(small_geometry),
            small_trace,
            record_latency=True,
            **kwargs,
        )
        _assert_metrics_equal(fast, instrumented)
        assert fast.write_rate.rates == instrumented.write_rate.rates
