"""Byte-identity tests for deterministic intra-trace sharding.

``replay_sharded`` splits one trace's sample boundaries across worker
processes and merges the per-shard snapshot components exactly; every
observable must match the serial lanes bit-for-bit for any shard/job
combination.  Workers recompute the vectorised decision pass, so tests
run with ``jobs=1`` (in-process) — the merge arithmetic, not the pool,
is what needs proving; the pool path itself is covered by the CLI test
and the sharded benchmark.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.log_structured import LogStructuredCache
from repro.baselines.set_associative import SetAssociativeCache
from repro.core.config import NemoConfig
from repro.core.nemo import NemoCache
from repro.harness.parallel import (
    MIN_REQUESTS_PER_SHARD,
    replay_sharded,
    sharding_eligible,
    sharding_ineligible_reason,
)
from repro.harness.runner import replay
from repro.workloads.trace import OP_DELETE, OP_GET, OP_SET, Trace


def _assert_finals_identical(fa, fb):
    assert fa.keys() == fb.keys()
    for key in fa:
        va, vb = fa[key], fb[key]
        assert va == vb or (
            isinstance(va, float)
            and isinstance(vb, float)
            and math.isnan(va)
            and math.isnan(vb)
        ), f"{key}: {va!r} != {vb!r}"


def _assert_results_identical(a, b):
    _assert_finals_identical(a.final, b.final)
    assert a.series.keys() == b.series.keys()
    for name in a.series:
        rows_a = a.series[name].as_rows()
        rows_b = b.series[name].as_rows()
        assert len(rows_a) == len(rows_b)
        for (xa, va), (xb, vb) in zip(rows_a, rows_b):
            assert xa == xb
            assert va == vb or (math.isnan(va) and math.isnan(vb))
    assert a.latency._values == b.latency._values
    assert a.latency._window_bounds == b.latency._window_bounds
    if a.write_rate is None:
        assert b.write_rate is None
    else:
        assert a.write_rate.rates == b.write_rate.rates
    assert a.sim_seconds == b.sim_seconds
    assert a.num_requests == b.num_requests


def _trace(n=5000, num_keys=400, seed=11):
    rng = np.random.default_rng(seed)
    ops = rng.choice(
        np.array([OP_GET, OP_SET, OP_DELETE], dtype=np.uint8),
        size=n,
        p=[0.8, 0.15, 0.05],
    )
    return Trace(
        ops=ops,
        keys=rng.integers(0, num_keys, size=n),
        sizes=rng.integers(40, 400, size=n),
        name="shard-mix",
    )


class TestShardedParity:
    def test_matches_serial_batched(self, small_geometry):
        trace = _trace()
        serial = replay(LogStructuredCache(small_geometry), trace)
        for shards in (2, 3, 5):
            sharded = replay_sharded(
                LogStructuredCache(small_geometry),
                trace,
                shards=shards,
                jobs=1,
            )
            assert sharded.kernel == "columnar"
            _assert_results_identical(sharded, serial)

    def test_instrumented_matches_serial(self, small_geometry):
        trace = _trace()
        kwargs = dict(
            sample_every=613,
            record_latency=True,
            mark_window_at=len(trace) // 3,
            write_rate_window_s=0.01,
        )
        serial = replay(LogStructuredCache(small_geometry), trace, **kwargs)
        sharded = replay_sharded(
            LogStructuredCache(small_geometry),
            trace,
            shards=3,
            jobs=1,
            **kwargs,
        )
        _assert_results_identical(sharded, serial)

    def test_mark_exactly_on_shard_boundary(self, small_geometry):
        """The window mark landing on a shard's end boundary belongs to
        that shard (mark <= hi), not the next one."""
        trace = _trace()
        n = len(trace)
        # With sample_every = n // 4 and shards=2, the mark at n // 2
        # is the first shard's last boundary.
        kwargs = dict(
            sample_every=n // 4,
            record_latency=True,
            mark_window_at=n // 2,
        )
        serial = replay(LogStructuredCache(small_geometry), trace, **kwargs)
        sharded = replay_sharded(
            LogStructuredCache(small_geometry), trace, shards=2, jobs=1, **kwargs
        )
        _assert_results_identical(sharded, serial)

    def test_explicit_sample_points(self, small_geometry):
        trace = _trace()
        kwargs = dict(sample_at=[100, 1234, 4999, len(trace)])
        serial = replay(LogStructuredCache(small_geometry), trace, **kwargs)
        sharded = replay_sharded(
            LogStructuredCache(small_geometry), trace, shards=4, jobs=1, **kwargs
        )
        _assert_results_identical(sharded, serial)

    def test_more_shards_than_boundaries(self, small_geometry):
        trace = _trace()
        kwargs = dict(sample_at=[len(trace)])
        serial = replay(LogStructuredCache(small_geometry), trace, **kwargs)
        sharded = replay_sharded(
            LogStructuredCache(small_geometry), trace, shards=8, jobs=1, **kwargs
        )
        _assert_results_identical(sharded, serial)

    def test_engine_not_mutated_on_fast_path(self, small_geometry):
        engine = LogStructuredCache(small_geometry)
        replay_sharded(engine, trace := _trace(), shards=2, jobs=1)
        assert engine.counters.lookups == 0
        assert engine.counters.inserts == 0
        assert engine.object_count() == 0
        # ... and the untouched engine replays serially to the same
        # numbers the sharded run reported.
        sharded = replay_sharded(
            LogStructuredCache(small_geometry), trace, shards=2, jobs=1
        )
        serial = replay(engine, trace)
        _assert_results_identical(sharded, serial)


class TestShardedFallbacks:
    def test_single_shard_runs_serial(self, small_geometry):
        trace = _trace()
        serial = replay(LogStructuredCache(small_geometry), trace)
        result = replay_sharded(
            LogStructuredCache(small_geometry), trace, shards=1
        )
        _assert_results_identical(result, serial)

    def test_non_columnar_kernel_falls_back(self, small_geometry):
        trace = _trace()
        serial = replay(LogStructuredCache(small_geometry), trace)
        result = replay_sharded(
            LogStructuredCache(small_geometry),
            trace,
            shards=2,
            kernel="batched",
        )
        assert result.kernel == "batched"
        _assert_results_identical(result, serial)

    def test_ineligible_engine_falls_back(self, small_geometry):
        trace = _trace()
        assert not sharding_eligible(
            SetAssociativeCache(small_geometry), trace
        )
        serial = replay(SetAssociativeCache(small_geometry), trace)
        result = replay_sharded(
            SetAssociativeCache(small_geometry), trace, shards=2
        )
        _assert_results_identical(result, serial)

    def test_wrapping_trace_falls_back(self, tiny_geometry):
        """A trace whose flushes exceed the device page count is not
        shardable (a wrap breaks the analytic model); it replays
        serially — columnar prefix with bail — instead."""
        trace = _trace(n=12_000, num_keys=2_000, seed=3)
        assert not sharding_eligible(LogStructuredCache(tiny_geometry), trace)
        serial = replay(LogStructuredCache(tiny_geometry), trace)
        result = replay_sharded(
            LogStructuredCache(tiny_geometry), trace, shards=2
        )
        assert serial.final["evicted_objects"] > 0
        _assert_results_identical(result, serial)

    def test_eligible_log_engine(self, small_geometry):
        assert sharding_eligible(LogStructuredCache(small_geometry), _trace())


def _nemo_config():
    return NemoConfig(
        flush_threshold=4, sgs_per_index_group=3, bf_capacity_per_set=20
    )


class TestShardedDemotionNotes:
    """Engines with a whole-trace kernel but no analytic sharding lane
    demote to the serial kernel and say so in ``result.notes``; silent
    fallbacks (no kernel at all, non-columnar lanes) stay silent."""

    def test_nemo_demotes_to_serial_kernel_with_note(self, small_geometry):
        trace = _trace()
        reason = sharding_ineligible_reason(
            NemoCache(small_geometry, _nemo_config()), trace
        )
        assert reason is not None and "Log kernel" in reason
        serial = replay(
            NemoCache(small_geometry, _nemo_config()),
            trace,
            kernel="columnar",
        )
        result = replay_sharded(
            NemoCache(small_geometry, _nemo_config()), trace, shards=4
        )
        assert result.kernel == "columnar"
        assert len(result.notes) == 1
        assert "4 shards on the serial whole-trace kernel" in result.notes[0]
        _assert_results_identical(result, serial)

    def test_no_kernel_engine_falls_back_without_demotion_note(
        self, small_geometry
    ):
        """Set has no registered kernel: the sharded lane goes serial
        silently and only the runner's own fallback note appears."""
        result = replay_sharded(
            SetAssociativeCache(small_geometry), _trace(), shards=2
        )
        assert len(result.notes) == 1
        assert "falling back to batched dispatch" in result.notes[0]

    def test_below_threshold_fanout_demotes_with_note(self, small_geometry):
        """Fanning a tiny trace over worker processes costs more than
        the replay itself: with explicit jobs > 1 and fewer than
        MIN_REQUESTS_PER_SHARD requests per shard, the sharded lane
        runs the serial whole-trace kernel and says so."""
        trace = _trace()
        assert len(trace) < 2 * MIN_REQUESTS_PER_SHARD
        serial = replay(
            LogStructuredCache(small_geometry), trace, kernel="columnar"
        )
        result = replay_sharded(
            LogStructuredCache(small_geometry), trace, shards=2, jobs=2
        )
        assert len(result.notes) == 1
        assert "requests-per-shard fan-out threshold" in result.notes[0]
        _assert_results_identical(result, serial)

    def test_min_requests_per_shard_zero_forces_analytic(
        self, small_geometry
    ):
        """min_requests_per_shard=0 disables the demotion: the analytic
        lane runs (no notes) and still merges byte-identically."""
        trace = _trace()
        serial = replay(
            LogStructuredCache(small_geometry), trace, kernel="columnar"
        )
        result = replay_sharded(
            LogStructuredCache(small_geometry),
            trace,
            shards=2,
            jobs=1,
            min_requests_per_shard=0,
        )
        assert result.notes == []
        _assert_results_identical(result, serial)
