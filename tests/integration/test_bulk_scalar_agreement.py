"""Every registered engine's bulk ops must agree with the scalar loop.

The batched replay dispatch calls ``lookup_many`` / ``insert_many`` /
``delete_many``; engines override them with inlined fast paths.  The
contract (enforced statically by reprolint R004, behaviourally here) is
that each override is observationally identical to the base-class
default — the plain loop over the scalar methods — including the
simulated-clock accumulation order, so metrics stay byte-identical.

Two identically-configured instances of each registered engine replay
the same short mixed GET/SET/DELETE trace, one through its (possibly
overridden) bulk methods and one through the unbound base-class
defaults, then their metric snapshots must match exactly.
"""

import argparse
import math

import numpy as np
import pytest

from repro.baselines.base import CacheEngine
from repro.cli import ENGINE_NAMES, build_engine
from repro.flash.geometry import FlashGeometry

STEP_US = 37.0


def make_engine(name):
    geometry = FlashGeometry(
        page_size=4096, pages_per_block=16, num_blocks=16, blocks_per_zone=2
    )
    args = argparse.Namespace(
        flush_threshold=4, sgs_per_index_group=2, cached_index_ratio=0.5
    )
    return build_engine(name, geometry, args)


def make_runs(seed=7, num_runs=80):
    """Consecutive same-op runs, the shape the harness dispatches."""
    rng = np.random.default_rng(seed)
    runs = []
    for _ in range(num_runs):
        op = rng.choice(["get", "set", "delete"], p=[0.6, 0.3, 0.1])
        length = int(rng.integers(1, 24))
        keys = [int(k) for k in rng.integers(0, 400, size=length)]
        sizes = [int(s) for s in rng.integers(40, 900, size=length)]
        runs.append((op, keys, sizes))
    return runs


def drive_bulk(engine, runs, record=None):
    now_us = 0.0
    for op, keys, sizes in runs:
        if op == "get":
            now_us = engine.lookup_many(keys, sizes, now_us, STEP_US, record)
        elif op == "set":
            now_us = engine.insert_many(keys, sizes, now_us, STEP_US)
        else:
            now_us = engine.delete_many(keys, now_us, STEP_US)
    return now_us


def drive_scalar(engine, runs, record=None):
    """Same runs through the base-class defaults: the scalar loops."""
    now_us = 0.0
    for op, keys, sizes in runs:
        if op == "get":
            now_us = CacheEngine.lookup_many(
                engine, keys, sizes, now_us, STEP_US, record
            )
        elif op == "set":
            now_us = CacheEngine.insert_many(engine, keys, sizes, now_us, STEP_US)
        else:
            now_us = CacheEngine.delete_many(engine, keys, now_us, STEP_US)
    return now_us


def assert_snapshots_identical(a, b):
    assert a.keys() == b.keys()
    for metric in a:
        va, vb = a[metric], b[metric]
        if isinstance(va, float) and math.isnan(va):
            assert isinstance(vb, float) and math.isnan(vb), metric
        else:
            assert va == vb, f"{metric}: bulk={va!r} scalar={vb!r}"


@pytest.mark.parametrize("name", ENGINE_NAMES)
class TestBulkScalarAgreement:
    def test_metrics_identical(self, name):
        bulk_engine = make_engine(name)
        scalar_engine = make_engine(name)
        runs = make_runs()

        clock_bulk = drive_bulk(bulk_engine, runs)
        clock_scalar = drive_scalar(scalar_engine, runs)

        assert clock_bulk == clock_scalar
        assert_snapshots_identical(
            bulk_engine.metrics_snapshot(), scalar_engine.metrics_snapshot()
        )
        assert bulk_engine.object_count() == scalar_engine.object_count()

    def test_recorded_latencies_identical(self, name):
        bulk_engine = make_engine(name)
        scalar_engine = make_engine(name)
        runs = make_runs(seed=13, num_runs=40)

        lat_bulk, lat_scalar = [], []
        drive_bulk(bulk_engine, runs, record=lat_bulk.append)
        drive_scalar(scalar_engine, runs, record=lat_scalar.append)

        gets = sum(len(keys) for op, keys, _ in runs if op == "get")
        assert len(lat_bulk) == gets
        assert lat_bulk == lat_scalar
