"""Stateful crash-consistency machines: the headline fault-injection net.

One Hypothesis rule-based machine per registered engine interleaves
requests, device faults (from a seeded :class:`FaultPlan`), and
power-loss/recovery cycles, checking after every step that

- the cache never serves a value it did not durably hold: a hit implies
  the key was inserted and not since deleted (crashes may *lose* live
  keys — that only turns hits into misses, never the reverse), and
- the device's fault accounting stays internally consistent (every
  program/erase failure retired exactly one block into the spare pool,
  ECC rescues imply their full retry budgets, counters never go
  negative).

``CRASH_MACHINE_EXAMPLES`` scales the example count: CI sets it to 200+
per engine; the local default keeps the suite fast.
"""

from __future__ import annotations

import math
import os

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.baselines.fairywren import FairyWrenCache
from repro.baselines.kangaroo import KangarooCache
from repro.baselines.log_structured import LogStructuredCache
from repro.baselines.set_associative import SetAssociativeCache
from repro.core.config import NemoConfig
from repro.core.nemo import NemoCache
from repro.faults.plan import FaultConfig, FaultPlan
from repro.flash.geometry import FlashGeometry

EXAMPLES = int(os.environ.get("CRASH_MACHINE_EXAMPLES", "10"))

#: Effectively-infinite spare pool: the machine explores fault *paths*,
#: not end-of-life, so retirement must never abort an example.
SPARES = 10_000


def tiny_geometry():
    return FlashGeometry(
        page_size=4096, pages_per_block=16, num_blocks=8, blocks_per_zone=1
    )


ENGINE_FACTORIES = {
    "log": lambda: LogStructuredCache(tiny_geometry()),
    "set": lambda: SetAssociativeCache(tiny_geometry(), op_ratio=0.5),
    "fw": lambda: FairyWrenCache(tiny_geometry(), log_fraction=0.15, op_ratio=0.1),
    "kg": lambda: KangarooCache(tiny_geometry(), log_fraction=0.15, op_ratio=0.1),
    "nemo": lambda: NemoCache(
        tiny_geometry(),
        NemoConfig(flush_threshold=3, sgs_per_index_group=2, bf_capacity_per_set=20),
    ),
}


def make_crash_machine(engine_name: str) -> type[RuleBasedStateMachine]:
    class CrashConsistencyMachine(RuleBasedStateMachine):
        @initialize(
            seed=st.integers(0, 2**32 - 1),
            read_rate=st.sampled_from([0.0, 0.02, 0.1]),
            program_rate=st.sampled_from([0.0, 0.01]),
            erase_rate=st.sampled_from([0.0, 0.02]),
        )
        def setup(self, seed, read_rate, program_rate, erase_rate):
            self.engine = ENGINE_FACTORIES[engine_name]()
            self.plan = FaultPlan(
                FaultConfig(
                    seed=seed,
                    read_error_rate=read_rate,
                    program_error_rate=program_rate,
                    erase_error_rate=erase_rate,
                    spare_blocks=SPARES,
                )
            )
            self.engine.install_fault_plan(self.plan)
            # Keys inserted and not since deleted.  A crash may silently
            # drop members (lost DRAM state), which only ever turns a
            # would-be hit into a miss — so `live` stays a sound upper
            # bound and "hit => key in live" stays the durability check.
            self.live: set[int] = set()

        @rule(key=st.integers(0, 250), size=st.integers(40, 900))
        def insert(self, key, size):
            self.engine.insert(key, size)
            self.live.add(key)

        @rule(key=st.integers(0, 250))
        def delete(self, key):
            self.engine.delete(key)
            self.live.discard(key)

        @rule(key=st.integers(0, 250), size=st.integers(40, 900))
        def lookup(self, key, size):
            result = self.engine.lookup(key, size)
            if result.hit:
                assert key in self.live, (
                    f"{engine_name} served key {key} it never durably held"
                )

        @rule()
        def crash_and_recover(self):
            self.engine.crash()
            self.engine.recover()
            # Deletes are synchronously durable (the flash image is
            # pruned in place), so nothing deleted may come back; keys
            # that only lived in DRAM are simply gone.  Both outcomes
            # keep `live` a superset of the cache's contents.

        @invariant()
        def accounting_consistent(self):
            if not hasattr(self, "engine"):
                return
            engine = self.engine
            fc = engine.stats.fault_snapshot()
            assert all(v >= 0 for v in fc.values()), fc
            # Every program/erase failure retired exactly one block
            # (the spare pool is sized so EOL never fires here).
            assert (
                fc["blocks_retired"]
                == fc["program_failures"] + fc["erase_failures"]
            )
            assert fc["blocks_retired"] <= SPARES
            # An ECC rescue only happens after a full retry budget.
            assert (
                fc["read_retries"]
                >= fc["ecc_rescued_reads"] * self.plan.config.max_read_retries
            )
            assert engine.counters.hits <= engine.counters.lookups
            assert engine.object_count() >= 0
            # WA accounting: byte counters are non-negative integers and
            # the device never wrote less to NAND than the host issued
            # (GC relocation and failed-program attempts only add).
            snap = engine.stats.snapshot()
            for key, value in snap.items():
                assert isinstance(value, (int, float)), key
                assert math.isnan(value) or value >= 0, (key, value)
            assert snap["flash_write_bytes"] >= snap["host_write_bytes"]

    CrashConsistencyMachine.__name__ = f"CrashMachine_{engine_name}"
    return CrashConsistencyMachine


_SETTINGS = settings(max_examples=EXAMPLES, stateful_step_count=50, deadline=None)

for _name in sorted(ENGINE_FACTORIES):
    _machine = make_crash_machine(_name)
    _case = _machine.TestCase
    _case.settings = _SETTINGS
    globals()[f"TestCrashConsistency_{_name}"] = _case
del _name, _machine, _case
