"""Determinism: identical seeds produce identical runs.

Reproducibility is a first-class property of this repository — every
random choice (workload generation, Nemo's statistical false positives,
the probabilistic flush policy) flows from explicit seeds, so two
replays with the same configuration must agree bit-for-bit on every
counter.
"""

from repro.baselines.fairywren import FairyWrenCache
from repro.core.config import NemoConfig
from repro.core.nemo import NemoCache
from repro.flash.geometry import FlashGeometry
from repro.harness.runner import replay
from repro.workloads.mixer import merged_twitter_trace


def geometry():
    return FlashGeometry(
        page_size=4096, pages_per_block=16, num_blocks=12, blocks_per_zone=1
    )


def run_nemo(seed):
    cache = NemoCache(
        geometry(),
        NemoConfig(
            flush_threshold=4,
            sgs_per_index_group=2,
            bf_capacity_per_set=20,
            rng_seed=seed,
        ),
    )
    trace = merged_twitter_trace(num_requests=30_000, wss_scale=1 / 1024, seed=5)
    result = replay(cache, trace)
    return cache, result


class TestDeterminism:
    def test_same_seed_identical_counters(self):
        a_cache, a = run_nemo(seed=11)
        b_cache, b = run_nemo(seed=11)
        assert a.final == b.final
        assert a_cache.fill_rates == b_cache.fill_rates
        assert a_cache.false_positive_reads == b_cache.false_positive_reads

    def test_different_fp_seed_changes_only_read_path(self):
        """The FP draw seed must not leak into placement or WA."""
        a_cache, a = run_nemo(seed=11)
        b_cache, b = run_nemo(seed=12)
        assert a_cache.fill_rates == b_cache.fill_rates
        assert a.final["host_write_bytes"] == b.final["host_write_bytes"]
        assert a.final["miss_ratio"] == b.final["miss_ratio"]

    def test_trace_seed_changes_everything(self):
        t1 = merged_twitter_trace(num_requests=1000, wss_scale=1 / 1024, seed=1)
        t2 = merged_twitter_trace(num_requests=1000, wss_scale=1 / 1024, seed=2)
        assert (t1.keys != t2.keys).any()

    def test_fw_deterministic(self):
        trace = merged_twitter_trace(num_requests=30_000, wss_scale=1 / 1024, seed=5)
        finals = []
        for _ in range(2):
            engine = FairyWrenCache(geometry(), log_fraction=0.1, op_ratio=0.1)
            finals.append(replay(engine, trace).final)
        assert finals[0] == finals[1]


class TestWearSpread:
    def test_nemo_fifo_wears_zones_evenly(self):
        """SG-pool FIFO rotation is naturally wear-levelling: no zone's
        erase count runs far ahead of the others."""
        cache, _ = run_nemo(seed=3)
        geo = cache.geometry
        erases = [
            sum(
                cache.device.nand.block_erases[b]
                for b in range(
                    z * geo.blocks_per_zone, (z + 1) * geo.blocks_per_zone
                )
            )
            for z in range(cache.sg_zone_count)
        ]
        if max(erases) >= 3:
            assert max(erases) - min(erases) <= max(erases) / 2 + 1
