"""Cross-engine integration tests: all five engines over one trace.

These tests assert the *relationships* the paper's evaluation is built
on — WA ordering, memory ordering, miss-ratio sanity — rather than any
single engine's internals.
"""

import math

import pytest

from repro.baselines.fairywren import FairyWrenCache
from repro.baselines.kangaroo import KangarooCache
from repro.baselines.log_structured import LogStructuredCache
from repro.baselines.set_associative import SetAssociativeCache
from repro.core.config import NemoConfig
from repro.core.nemo import NemoCache
from repro.flash.geometry import FlashGeometry
from repro.harness.runner import replay
from tests.conftest import cached_twitter_trace


@pytest.fixture(scope="module")
def results():
    geometry = FlashGeometry(
        page_size=4096, pages_per_block=64, num_blocks=16, blocks_per_zone=1
    )
    trace = cached_twitter_trace(80_000, 1.0 / 512)
    engines = [
        LogStructuredCache(geometry),
        SetAssociativeCache(geometry, op_ratio=0.5),
        FairyWrenCache(geometry, log_fraction=0.05, op_ratio=0.05),
        KangarooCache(geometry, log_fraction=0.05, op_ratio=0.05),
        NemoCache(geometry, NemoConfig(flush_threshold=8, sgs_per_index_group=4)),
    ]
    out = {}
    for engine in engines:
        out[engine.name] = (engine, replay(engine, trace))
    return out


class TestWAOrdering:
    """Table 1 / Figure 12a orderings."""

    def test_log_is_near_ideal(self, results):
        engine, _ = results["Log"]
        assert engine.write_amplification < 1.3

    def test_nemo_is_near_ideal(self, results):
        engine, _ = results["Nemo"]
        assert engine.write_amplification < 2.0

    def test_set_wa_is_page_over_object(self, results):
        engine, _ = results["Set"]
        assert engine.write_amplification > 8.0

    def test_fw_between_nemo_and_set_extreme(self, results):
        nemo, _ = results["Nemo"]
        fw, _ = results["FW"]
        assert fw.write_amplification > 2 * nemo.write_amplification

    def test_kg_worst(self, results):
        kg, _ = results["KG"]
        fw, _ = results["FW"]
        assert kg.write_amplification > fw.write_amplification

    def test_full_ordering(self, results):
        """Log ≈ Nemo ≪ FW < KG (Set sits at page/object)."""
        wa = {name: e.write_amplification for name, (e, _) in results.items()}
        assert wa["Log"] < wa["FW"]
        assert wa["Nemo"] < wa["FW"] < wa["KG"]


class TestMemoryOrdering:
    def test_set_cheapest_log_most_expensive(self, results):
        bits = {
            name: e.memory_overhead_bits_per_object()
            for name, (e, _) in results.items()
        }
        assert bits["Set"] < bits["FW"] < bits["Log"]

    def test_nemo_memory_close_to_fw(self, results):
        """Table 6: Nemo 8.3 vs FW 9.9 — same magnitude (the buffer
        term inflates at MiB scale, so compare the scale-free parts)."""
        nemo, _ = results["Nemo"]
        breakdown = nemo.memory_overhead_breakdown()
        scale_free = breakdown["index"] + breakdown["evict"]
        fw, _ = results["FW"]
        assert scale_free < fw.memory_overhead_bits_per_object()


class TestMissRatios:
    def test_all_engines_serve_hits(self, results):
        for name, (engine, result) in results.items():
            assert 0.0 < result.miss_ratio < 0.8, name

    def test_nemo_miss_close_to_fw(self, results):
        """Figure 16: similar miss ratios."""
        _, nemo = results["Nemo"]
        _, fw = results["FW"]
        assert nemo.miss_ratio == pytest.approx(fw.miss_ratio, abs=0.08)


class TestAccountingConsistency:
    def test_logical_bytes_equal_across_engines(self, results):
        """Engines admit (almost) the same logical traffic: every GET
        miss and SET becomes one admission.  Miss counts differ between
        engines, so allow proportional slack."""
        values = [
            e.stats.logical_write_bytes for _, (e, _) in results.items()
        ]
        assert max(values) < 2.0 * min(values)

    def test_wa_is_finite_everywhere(self, results):
        for name, (engine, _) in results.items():
            assert math.isfinite(engine.write_amplification), name

    def test_zns_engines_have_unit_dlwa(self, results):
        for name in ("Log", "FW", "KG", "Nemo"):
            engine, _ = results[name]
            assert engine.stats.dlwa == pytest.approx(1.0)

    def test_set_engine_dlwa_at_least_one(self, results):
        engine, _ = results["Set"]
        assert engine.stats.dlwa >= 1.0
