"""Property-based cache-semantics tests across all engines.

Every engine must behave like a *cache*: after a SET, a GET may hit or
miss (eviction is allowed), but a hit must never resurface a DELETEd or
never-inserted key, sizes must round-trip, and the structures must stay
internally consistent under arbitrary op interleavings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fairywren import FairyWrenCache
from repro.baselines.kangaroo import KangarooCache
from repro.baselines.log_structured import LogStructuredCache
from repro.baselines.set_associative import SetAssociativeCache
from repro.core.config import NemoConfig
from repro.core.nemo import NemoCache
from repro.flash.geometry import FlashGeometry


def tiny_geometry():
    return FlashGeometry(
        page_size=4096, pages_per_block=16, num_blocks=8, blocks_per_zone=1
    )


ENGINE_FACTORIES = {
    "log": lambda: LogStructuredCache(tiny_geometry()),
    "set": lambda: SetAssociativeCache(tiny_geometry(), op_ratio=0.5),
    "fw": lambda: FairyWrenCache(tiny_geometry(), log_fraction=0.15, op_ratio=0.1),
    "kg": lambda: KangarooCache(tiny_geometry(), log_fraction=0.15, op_ratio=0.1),
    "nemo": lambda: NemoCache(
        tiny_geometry(),
        NemoConfig(flush_threshold=4, sgs_per_index_group=2, bf_capacity_per_set=20),
    ),
}

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["get", "set", "delete"]),
        st.integers(0, 200),
        st.integers(40, 800),
    ),
    max_size=400,
)


@pytest.mark.parametrize("engine_name", sorted(ENGINE_FACTORIES))
@settings(max_examples=8, deadline=None)
@given(ops=op_strategy)
def test_cache_semantics(engine_name, ops):
    engine = ENGINE_FACTORIES[engine_name]()
    live: set[int] = set()
    for op, key, size in ops:
        if op == "set":
            engine.insert(key, size)
            live.add(key)
        elif op == "delete":
            engine.delete(key)
            live.discard(key)
        else:
            result = engine.lookup(key, size)
            if result.hit:
                assert key in live, f"{engine_name} resurrected key {key}"
    # Counters are consistent.
    assert engine.counters.hits <= engine.counters.lookups
    assert engine.stats.logical_write_bytes >= 0
    assert engine.object_count() >= 0


@pytest.mark.parametrize("engine_name", sorted(ENGINE_FACTORIES))
@settings(max_examples=4, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_heavy_insert_churn_never_crashes(engine_name, seed):
    """Sustained unique-key pressure cycles eviction paths safely."""
    engine = ENGINE_FACTORIES[engine_name]()
    base = seed * 100_000
    for i in range(3000):
        engine.insert(base + i, 150 + (i * 37) % 500)
    assert engine.object_count() > 0
    wa = engine.write_amplification
    assert wa != wa or wa >= 0.0  # nan (nothing flushed) or non-negative
