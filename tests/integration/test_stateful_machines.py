"""Hypothesis stateful machines: long random op interleavings.

Two rule-based machines drive the FTL and the Nemo engine through
arbitrary operation sequences while checking them against plain-dict
models after every step — the strongest correctness net in the suite,
catching ordering bugs that fixed scenarios miss.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.config import NemoConfig
from repro.core.nemo import NemoCache
from repro.flash.ftl import PageMapFTL
from repro.flash.geometry import FlashGeometry


class FTLMachine(RuleBasedStateMachine):
    """The FTL must behave as a dict under write/trim at any GC load."""

    @initialize()
    def setup(self):
        geo = FlashGeometry(
            page_size=4096, pages_per_block=4, num_blocks=8, blocks_per_zone=1
        )
        self.ftl = PageMapFTL(geo, op_ratio=0.3)
        self.model: dict[int, int] = {}
        self.seq = 0

    @rule(lba=st.integers(0, 50))
    def write(self, lba):
        lba %= self.ftl.num_lbas
        self.seq += 1
        self.ftl.write(lba, self.seq)
        self.model[lba] = self.seq

    @rule(lba=st.integers(0, 50))
    def trim(self, lba):
        lba %= self.ftl.num_lbas
        self.ftl.trim(lba)
        self.model.pop(lba, None)

    @rule(lba=st.integers(0, 50))
    def read(self, lba):
        lba %= self.ftl.num_lbas
        if lba in self.model:
            assert self.ftl.read(lba)[0] == self.model[lba]
        else:
            assert not self.ftl.is_mapped(lba)

    @invariant()
    def mapping_consistent(self):
        if hasattr(self, "ftl"):
            self.ftl.check_invariants()
            assert self.ftl.mapped_lba_count() == len(self.model)


class NemoMachine(RuleBasedStateMachine):
    """Nemo must never resurrect deleted keys, lie about sizes, or
    corrupt its pool/index bookkeeping, under any op interleaving."""

    @initialize()
    def setup(self):
        geo = FlashGeometry(
            page_size=4096, pages_per_block=16, num_blocks=8, blocks_per_zone=1
        )
        self.cache = NemoCache(
            geo,
            NemoConfig(
                flush_threshold=3,
                sgs_per_index_group=2,
                bf_capacity_per_set=20,
                cooling_interval_fraction=0.3,
            ),
        )
        self.live: dict[int, int] = {}

    @rule(key=st.integers(0, 300), size=st.integers(40, 900))
    def insert(self, key, size):
        self.cache.insert(key, size)
        self.live[key] = size

    @rule(key=st.integers(0, 300))
    def delete(self, key):
        self.cache.delete(key)
        self.live.pop(key, None)

    @rule(key=st.integers(0, 300))
    def lookup(self, key):
        result = self.cache.lookup(key, self.live.get(key, 100))
        if result.hit:
            # Hits only for live keys (eviction may turn live into miss,
            # but never the reverse).
            assert key in self.live

    @rule()
    def crash_and_recover(self):
        # Fault-free power loss: DRAM-buffered objects may be lost
        # (turning live keys into misses — allowed) but deletes are
        # durable, so `live` stays a sound upper bound and every
        # invariant below must hold on the rebuilt structures too.
        self.cache.crash()
        self.cache.recover()

    @invariant()
    def structures_consistent(self):
        if not hasattr(self, "cache"):
            return
        cache = self.cache
        # Pool bounded; FIFO ids ordered.
        assert len(cache.pool) <= cache.pool_capacity_sgs
        ids = [f.sg_id for f in cache.pool]
        assert ids == sorted(ids)
        # Copy counts match pool membership exactly.
        counted: dict[int, int] = {}
        for fsg in cache.pool:
            for s in fsg.sets:
                for key in s:
                    counted[key] = counted.get(key, 0) + 1
        assert counted == cache._flash_copies
        # The newest-holder index points into the live pool.
        live_ids = set(ids)
        assert set(cache._flash_index.values()) <= live_ids
        # Byte accounting is non-negative and consistent per set.
        for sg in cache.queue:
            for s in sg.sets:
                assert s.used_bytes == sum(s.objects.values())


TestFTLMachine = FTLMachine.TestCase
TestFTLMachine.settings = settings(
    max_examples=25, stateful_step_count=60, deadline=None
)

TestNemoMachine = NemoMachine.TestCase
TestNemoMachine.settings = settings(
    max_examples=15, stateful_step_count=80, deadline=None
)
