from base import CacheEngine
from helper import admit_probability


class JitterEngine(CacheEngine):
    def __init__(self) -> None:
        self.size = 0

    def lookup(self, key: int, size: int, now_us: float = 0.0) -> bool:
        return key % 2 == 0

    def insert(self, key: int, size: int, now_us: float = 0.0) -> None:
        if admit_probability(size) > 0.5:
            self.size += size
