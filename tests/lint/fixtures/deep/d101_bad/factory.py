from engine import JitterEngine


def make_engine(name: str) -> JitterEngine:
    return JitterEngine()
