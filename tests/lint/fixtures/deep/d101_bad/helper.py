"""Unseeded draw two calls away from the engine entry point."""

import random


def jitter() -> float:
    # D101 true positive: global-stream draw on a replay-reachable path.
    return random.random()


def admit_probability(size: int) -> float:
    return jitter() / max(size, 1)
