"""Negative fixture: every draw descends from a seeded stream."""

import random

from base import CacheEngine


class SeededEngine(CacheEngine):
    def __init__(self, seed: int = 7) -> None:
        self.size = 0
        self._rng = random.Random(seed)

    def lookup(self, key: int, size: int, now_us: float = 0.0) -> bool:
        return key % 2 == 0

    def insert(self, key: int, size: int, now_us: float = 0.0) -> None:
        if self._rng.random() > 0.5:
            self.size += size
