from engine import SeededEngine


def make_engine(name: str) -> SeededEngine:
    return SeededEngine()
