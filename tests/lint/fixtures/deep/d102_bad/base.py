class CacheEngine:
    def lookup(self, key: int, size: int, now_us: float = 0.0) -> bool:
        raise NotImplementedError

    def insert(self, key: int, size: int, now_us: float = 0.0) -> None:
        raise NotImplementedError
