"""D102 true positive: flash writes the WA accounting never sees."""

from base import CacheEngine
from device import FlashStats, NandArray


class LeakyEngine(CacheEngine):
    def __init__(self) -> None:
        self.nand = NandArray()
        self.stats = FlashStats()

    def lookup(self, key: int, size: int, now_us: float = 0.0) -> bool:
        return False

    def insert(self, key: int, size: int, now_us: float = 0.0) -> None:
        # Burns a NAND program with no FlashStats mutation anywhere on
        # the path (neither here nor in any caller/callee).
        self.nand.program(0, key % 64)
