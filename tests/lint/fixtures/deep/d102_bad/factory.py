from engine import LeakyEngine


def make_engine(name: str) -> LeakyEngine:
    return LeakyEngine()
