class NandArray:
    def program(self, block: int, page: int) -> None:
        pass


class FlashStats:
    def __init__(self) -> None:
        self.host_write_bytes = 0

    def record_host_write(self, nbytes: int) -> None:
        self.host_write_bytes += nbytes
