"""Negative fixture: the NAND op's caller charges FlashStats."""

from base import CacheEngine
from device import FlashStats, NandArray


class AccountedEngine(CacheEngine):
    def __init__(self) -> None:
        self.nand = NandArray()
        self.stats = FlashStats()

    def lookup(self, key: int, size: int, now_us: float = 0.0) -> bool:
        return False

    def insert(self, key: int, size: int, now_us: float = 0.0) -> None:
        self.nand.program(0, key % 64)
        self.stats.record_host_write(size)
