from engine import AccountedEngine


def make_engine(name: str) -> AccountedEngine:
    return AccountedEngine()
