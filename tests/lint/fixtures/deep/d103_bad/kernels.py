# reprolint: columnar-kernel-zone
"""D103 positive: a decision pass mutates the engine mid-decision."""


class Engine:
    def __init__(self) -> None:
        self.head = 0

    def insert(self, key: int, size: int) -> None:
        self.head += size


class KernelSpec:
    def __init__(self, name=None, replay=None):
        self.name = name
        self.replay = replay


def _decide(engine, keys):
    # Decision passes must be pure: this store is the violation.
    engine.head = len(keys)
    return [k for k in keys if k % 2 == 0]


def replay_columnar(engine, keys):
    plan = _decide(engine, keys)
    for key in plan:
        engine.insert(key, 1)
    return len(plan)


KERNEL_REGISTRY = {
    Engine: KernelSpec(name="bad", replay=replay_columnar),
}
