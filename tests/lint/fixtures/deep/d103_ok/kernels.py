# reprolint: columnar-kernel-zone
"""Negative fixture: pure decision pass, mutation in the replay driver."""


class Engine:
    def __init__(self) -> None:
        self.head = 0

    def insert(self, key: int, size: int) -> None:
        self.head += size


class KernelSpec:
    def __init__(self, name=None, replay=None):
        self.name = name
        self.replay = replay


def _decide(engine, keys):
    return [k for k in keys if k % 2 == 0]


def replay_columnar(engine, keys):
    plan = _decide(engine, keys)
    # The registered replay driver is the audited mutation surface.
    for key in plan:
        engine.insert(key, 1)
    engine.head = len(plan)
    return len(plan)


KERNEL_REGISTRY = {
    Engine: KernelSpec(name="ok", replay=replay_columnar),
}
