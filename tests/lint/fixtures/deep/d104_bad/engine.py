"""Two D104 positives: a protocol hole and a wall-clock recovery."""

import time

from base import CacheEngine


class NoCrashEngine(CacheEngine):
    """Registered engine that never overrides crash/recover."""

    def lookup(self, key: int, size: int, now_us: float = 0.0) -> bool:
        return False

    def insert(self, key: int, size: int, now_us: float = 0.0) -> None:
        pass


class ClockEngine(CacheEngine):
    """Recover path reads the wall clock (nondeterministic recovery)."""

    def __init__(self) -> None:
        self.recovered_at = 0.0

    def lookup(self, key: int, size: int, now_us: float = 0.0) -> bool:
        return False

    def insert(self, key: int, size: int, now_us: float = 0.0) -> None:
        pass

    def crash(self) -> None:
        pass

    def recover(self) -> None:
        self.recovered_at = time.time()
