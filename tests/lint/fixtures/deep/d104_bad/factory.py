from engine import ClockEngine, NoCrashEngine


def make_engine(name: str):
    if name == "nocrash":
        return NoCrashEngine()
    return ClockEngine()
