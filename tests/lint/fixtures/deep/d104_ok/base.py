class EngineStateError(RuntimeError):
    pass


class CacheEngine:
    def lookup(self, key: int, size: int, now_us: float = 0.0) -> bool:
        raise NotImplementedError

    def insert(self, key: int, size: int, now_us: float = 0.0) -> None:
        raise NotImplementedError

    def crash(self) -> None:
        raise EngineStateError("engine does not model crashes")

    def recover(self) -> None:
        raise EngineStateError("engine does not model crashes")
