"""Negative fixture: total, deterministic crash protocol."""

from base import CacheEngine


class DurableEngine(CacheEngine):
    def __init__(self) -> None:
        self.alive = True
        self.epoch = 0

    def lookup(self, key: int, size: int, now_us: float = 0.0) -> bool:
        return self.alive

    def insert(self, key: int, size: int, now_us: float = 0.0) -> None:
        pass

    def crash(self) -> None:
        self.alive = False

    def recover(self) -> None:
        self.alive = True
        self.epoch += 1
