from engine import DurableEngine


def make_engine(name: str) -> DurableEngine:
    return DurableEngine()
