"""D105 positives: renamed base parameter + changed default."""

from base import CacheEngine


class DriftEngine(CacheEngine):
    def lookup(self, key: int, size: int, now_us: float = 0.0) -> bool:
        return False

    def insert(self, key: int, size: int, now_us: float = 0.0) -> None:
        pass

    def lookup_many(
        self,
        keys: list[int],
        sizes: list[int],
        now_us: float,
        step_us: float,
        record: object | None = 0,
    ) -> float:
        # Default drift: base says record=None, this says record=0.
        return now_us

    def insert_many(
        self,
        keys: list[int],
        lengths: list[int],
        now_us: float,
        step_us: float,
    ) -> float:
        # Renamed base parameter: ``sizes`` became ``lengths``.
        return now_us
