from engine import DriftEngine


def make_engine(name: str) -> DriftEngine:
    return DriftEngine()
