class CacheEngine:
    def lookup(self, key: int, size: int, now_us: float = 0.0) -> bool:
        raise NotImplementedError

    def insert(self, key: int, size: int, now_us: float = 0.0) -> None:
        raise NotImplementedError

    def delete(self, key: int) -> bool:
        return False

    def lookup_many(
        self,
        keys: list[int],
        sizes: list[int],
        now_us: float,
        step_us: float,
        record: object | None = None,
    ) -> float:
        return now_us

    def insert_many(
        self,
        keys: list[int],
        sizes: list[int],
        now_us: float,
        step_us: float,
    ) -> float:
        return now_us

    def delete_many(self, keys: list[int], now_us: float, step_us: float) -> float:
        return now_us
