"""Negative fixture: overrides agree with the base, extras defaulted."""

from base import CacheEngine


class ParityEngine(CacheEngine):
    def lookup(self, key: int, size: int, now_us: float = 0.0) -> bool:
        return False

    def insert(self, key: int, size: int, now_us: float = 0.0) -> None:
        pass

    def lookup_many(
        self,
        keys: list[int],
        sizes: list[int],
        now_us: float,
        step_us: float,
        record: object | None = None,
        *,
        offsets: list[int] | None = None,
    ) -> float:
        return now_us
