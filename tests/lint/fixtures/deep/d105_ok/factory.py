from engine import ParityEngine


def make_engine(name: str) -> ParityEngine:
    return ParityEngine()
