"""Unit tests for the whole-program symbol table, call graph and cache.

Covers the resolution strategies the deep rules lean on (self/param/
local/chained attribute calls, virtual dispatch through base-class
receivers), cycle safety of the traversals, and the mtime/class-set
keyed cache invalidation.
"""

import json
import os
from pathlib import Path

from repro.lint.deep.cache import CACHE_FILENAME, load_project, load_symbol_tables
from repro.lint.deep.callgraph import build_project
from repro.lint.deep.dataflow import covered_fixpoint, reachable, shortest_path
from repro.lint.deep.symbols import extract_module, parse_suppression_comments


def project_from(sources: dict[str, str]):
    """Build a Project from {rel_path: source} without touching disk."""
    class_names = set()
    for source in sources.values():
        for line in source.splitlines():
            stripped = line.strip()
            if stripped.startswith("class "):
                class_names.add(stripped[6:].split("(")[0].split(":")[0].strip())
    modules = {
        rel: extract_module(
            rel, source, zone="other", project_class_names=class_names
        )
        for rel, source in sources.items()
    }
    return build_project(".", modules)


class TestAttributeCallResolution:
    def test_self_method_call_resolves_through_own_class(self):
        project = project_from(
            {
                "m.py": (
                    "class A:\n"
                    "    def f(self):\n"
                    "        return self.g()\n"
                    "    def g(self):\n"
                    "        return 1\n"
                )
            }
        )
        assert "m.A.g" in project.edges["m.A.f"]

    def test_annotated_param_fans_out_to_subclass_overrides(self):
        project = project_from(
            {
                "base.py": (
                    "class Base:\n"
                    "    def run(self):\n"
                    "        return 0\n"
                ),
                "sub.py": (
                    "from base import Base\n"
                    "class Sub(Base):\n"
                    "    def run(self):\n"
                    "        return 1\n"
                ),
                "drv.py": (
                    "from base import Base\n"
                    "def drive(engine: Base):\n"
                    "    return engine.run()\n"
                ),
            }
        )
        callees = set(project.edges["drv.drive"])
        # Virtual dispatch: the base method AND the override are callees.
        assert {"base.Base.run", "sub.Sub.run"} <= callees

    def test_local_construction_taints_the_receiver(self):
        project = project_from(
            {
                "m.py": (
                    "class Box:\n"
                    "    def get(self):\n"
                    "        return 1\n"
                    "def use():\n"
                    "    b = Box()\n"
                    "    return b.get()\n"
                )
            }
        )
        assert "m.Box.get" in project.edges["m.use"]

    def test_attribute_chain_folds_through_attr_types(self):
        project = project_from(
            {
                "m.py": (
                    "class Nand:\n"
                    "    def program(self):\n"
                    "        return 1\n"
                    "class Device:\n"
                    "    def __init__(self):\n"
                    "        self.nand = Nand()\n"
                    "class Engine:\n"
                    "    def __init__(self):\n"
                    "        self.device = Device()\n"
                    "    def write(self):\n"
                    "        return self.device.nand.program()\n"
                )
            }
        )
        assert "m.Nand.program" in project.edges["m.Engine.write"]

    def test_instantiation_edges_to_init(self):
        project = project_from(
            {
                "m.py": (
                    "class Box:\n"
                    "    def __init__(self):\n"
                    "        self.x = 1\n"
                    "def build():\n"
                    "    return Box()\n"
                )
            }
        )
        assert "m.Box.__init__" in project.edges["m.build"]


class TestCycleHandling:
    def test_recursive_call_graph_terminates(self):
        project = project_from(
            {
                "m.py": (
                    "def ping(n):\n"
                    "    return pong(n - 1)\n"
                    "def pong(n):\n"
                    "    return ping(n - 1)\n"
                )
            }
        )
        scope = reachable(project.edges, ["m.ping"])
        assert {"m.ping", "m.pong"} <= scope
        assert shortest_path(project.edges, ["m.ping"], "m.pong") == [
            "m.ping",
            "m.pong",
        ]

    def test_cyclic_class_bases_terminate(self):
        project = project_from(
            {
                "m.py": (
                    "class A(B):\n"
                    "    def f(self):\n"
                    "        return self.g()\n"
                    "class B(A):\n"
                    "    def g(self):\n"
                    "        return 1\n"
                )
            }
        )
        # MRO walk over the cyclic bases must not hang and still
        # resolves g through the cycle.
        assert "m.B.g" in project.edges["m.A.f"]

    def test_covered_fixpoint_on_cycle_is_uncovered(self):
        edges = {"a": ("b",), "b": ("a",)}
        uncovered = covered_fixpoint(
            edges, {"a", "b"}, needs_cover={"a"}, has_sink=set()
        )
        assert uncovered == {"a"}


class TestSuppressionComments:
    def test_docstring_mentions_do_not_register(self):
        source = (
            '"""Docs say use `# reprolint: disable=R001` inline."""\n'
            "x = 1  # reprolint: disable=R002\n"
        )
        comments = parse_suppression_comments(source)
        assert len(comments) == 1
        assert comments[0].codes == ["R002"]
        assert comments[0].effective_lines == [2]

    def test_comment_only_line_covers_the_next_line(self):
        source = "# reprolint: disable=R008\nx = 1\n"
        (comment,) = parse_suppression_comments(source)
        assert comment.effective_lines == [1, 2]


def seed_project(root: Path) -> None:
    (root / "pyproject.toml").write_text("[project]\nname = 'fake'\n")
    pkg = root / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "a.py").write_text("def fa():\n    return 1\n")
    (pkg / "b.py").write_text("from repro.a import fa\n\nresult = fa()\n")


class TestCacheInvalidation:
    def test_second_run_reuses_everything(self, tmp_path):
        seed_project(tmp_path)
        _, reused, parsed = load_symbol_tables(
            tmp_path, scan_roots=("src/repro",)
        )
        assert (reused, parsed) == (0, 2)
        _, reused, parsed = load_symbol_tables(
            tmp_path, scan_roots=("src/repro",)
        )
        assert (reused, parsed) == (2, 0)

    def test_mtime_change_reparses_only_that_file(self, tmp_path):
        seed_project(tmp_path)
        load_symbol_tables(tmp_path, scan_roots=("src/repro",))
        target = tmp_path / "src" / "repro" / "a.py"
        target.write_text("def fa():\n    return 2\n")
        os.utime(target, ns=(1, 1))  # force a distinct mtime_ns
        _, reused, parsed = load_symbol_tables(
            tmp_path, scan_roots=("src/repro",)
        )
        assert (reused, parsed) == (1, 1)

    def test_new_class_invalidates_the_whole_cache(self, tmp_path):
        seed_project(tmp_path)
        load_symbol_tables(tmp_path, scan_roots=("src/repro",))
        target = tmp_path / "src" / "repro" / "a.py"
        target.write_text("class Fresh:\n    pass\n\ndef fa():\n    return 1\n")
        os.utime(target, ns=(1, 1))
        # Receiver inference depends on the global class-name set, so
        # every entry re-parses, not just the edited file.
        _, reused, parsed = load_symbol_tables(
            tmp_path, scan_roots=("src/repro",)
        )
        assert (reused, parsed) == (0, 2)

    def test_schema_mismatch_discards_cache(self, tmp_path):
        seed_project(tmp_path)
        load_symbol_tables(tmp_path, scan_roots=("src/repro",))
        cache_file = tmp_path / CACHE_FILENAME
        payload = json.loads(cache_file.read_text())
        payload["schema"] = -1
        cache_file.write_text(json.dumps(payload))
        _, reused, parsed = load_symbol_tables(
            tmp_path, scan_roots=("src/repro",)
        )
        assert (reused, parsed) == (0, 2)

    def test_no_cache_flag_skips_the_file(self, tmp_path):
        seed_project(tmp_path)
        load_symbol_tables(tmp_path, use_cache=False, scan_roots=("src/repro",))
        assert not (tmp_path / CACHE_FILENAME).exists()

    def test_cross_module_edges_survive_a_cached_load(self, tmp_path):
        seed_project(tmp_path)
        load_project(tmp_path, scan_roots=("src/repro",))
        project, reused, parsed = load_project(
            tmp_path, scan_roots=("src/repro",)
        )
        assert (reused, parsed) == (2, 0)
        assert "repro.a.fa" in project.edges["repro.b.<module>"]
