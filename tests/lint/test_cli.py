"""End-to-end tests for the ``repro lint`` / ``tools/reprolint`` front end.

The pinned contract: the real repo tree lints clean (exit 0), a seeded
violation tree exits 1, usage errors exit 2, and syntax errors surface
as E999 diagnostics instead of crashing the run.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.cli import find_repo_root, main
from repro.lint.engine import lint_file, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def seed_fixture_tree(root: Path) -> Path:
    """Lay out a minimal fake repo with one R001 violation in core."""
    (root / "pyproject.toml").write_text("[project]\nname = 'fake'\n")
    bad = root / "src" / "repro" / "core"
    bad.mkdir(parents=True)
    (bad / "bad.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n"
    )
    return root


class TestMain:
    def test_repo_tree_is_clean(self, capsys):
        assert main(["--root", str(REPO_ROOT)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_seeded_violation_exits_one(self, tmp_path, capsys):
        seed_fixture_tree(tmp_path)
        assert main(["--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out
        assert "bad.py" in out

    def test_select_runs_only_requested_rules(self, tmp_path):
        seed_fixture_tree(tmp_path)
        # The only seeded violation is R001; selecting R002 alone is clean.
        assert main(["--root", str(tmp_path), "--select", "R002"]) == 0
        assert main(["--root", str(tmp_path), "--select", "R001"]) == 1

    def test_unknown_select_is_usage_error(self, tmp_path, capsys):
        seed_fixture_tree(tmp_path)
        assert main(["--root", str(tmp_path), "--select", "R999"]) == 2
        assert "R999" in capsys.readouterr().err

    def test_list_rules_names_all_codes(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
        ):
            assert code in out

    def test_explicit_paths_restrict_the_scan(self, tmp_path):
        seed_fixture_tree(tmp_path)
        clean = tmp_path / "tests"
        clean.mkdir()
        (clean / "test_ok.py").write_text("def test_ok():\n    assert True\n")
        assert main(["--root", str(tmp_path), "tests"]) == 0
        assert main(["--root", str(tmp_path), "src"]) == 1

    def test_find_repo_root_walks_up(self, tmp_path):
        seed_fixture_tree(tmp_path)
        nested = tmp_path / "src" / "repro" / "core"
        assert find_repo_root(nested) == tmp_path


class TestSyntaxErrors:
    def test_syntax_error_reports_e999(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        found = lint_file(broken, "src/repro/core/broken.py")
        assert [v.code for v in found] == ["E999"]
        rendered = found[0].render()
        assert "broken.py" in rendered and "E999" in rendered

    def test_syntax_error_does_not_abort_tree_scan(self, tmp_path):
        seed_fixture_tree(tmp_path)
        (tmp_path / "src" / "repro" / "core" / "broken.py").write_text(
            "def oops(:\n"
        )
        found = lint_paths(tmp_path)
        assert {v.code for v in found} == {"R001", "E999"}


class TestToolsShim:
    def test_reprolint_script_exists_and_is_executable(self):
        shim = REPO_ROOT / "tools" / "reprolint"
        assert shim.is_file()
        assert os.access(shim, os.X_OK)

    def test_subprocess_smoke(self):
        """``python -m repro lint`` exits 0 on the repo — the same
        invocation the CI lint job runs."""
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "-q"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
