"""CLI and output-format tests for ``repro lint --deep``.

Pins: the real repo is deep-clean (exit 0) inside the CI runtime
budget, the JSON shape is snapshot-stable, SARIF carries the fields
GitHub code scanning requires, W001 reports stale suppressions, and
the dead-code report never affects the exit status.
"""

import json
from pathlib import Path

from repro.lint.cli import main
from repro.lint.deep.driver import deep_lint, shallow_codes_for_deep
from repro.lint.engine import lint_source

REPO_ROOT = Path(__file__).resolve().parents[2]


def seed_clean_tree(root: Path) -> Path:
    (root / "pyproject.toml").write_text("[project]\nname = 'fake'\n")
    pkg = root / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text("def used():\n    return 1\n\nVALUE = used()\n")
    return root


def seed_violation_tree(root: Path) -> Path:
    seed_clean_tree(root)
    bad = root / "src" / "repro" / "core" / "bad.py"
    bad.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    return root


class TestDeepOnRepo:
    def test_repo_is_deep_clean_within_budget(self, tmp_path):
        result = deep_lint(
            REPO_ROOT, use_cache=True, cache_path=tmp_path / "cache.json"
        )
        assert result.violations == []
        # Acceptance budget is 30s in CI; a cold local build must fit
        # comfortably inside it.
        assert result.stats["seconds"] < 30

    def test_deep_cli_exits_zero_on_repo(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["--root", str(REPO_ROOT), "--deep", "-q"]) == 0

    def test_r004_is_replaced_by_d105_in_deep_runs(self):
        codes = shallow_codes_for_deep()
        assert "R004" not in codes
        assert "W001" in codes


class TestJsonFormat:
    def test_json_snapshot_shape(self, tmp_path, capsys):
        seed_violation_tree(tmp_path)
        out_file = tmp_path / "report.json"
        assert (
            main(
                [
                    "--root",
                    str(tmp_path),
                    "--format",
                    "json",
                    "--output",
                    str(out_file),
                    "-q",
                ]
            )
            == 1
        )
        payload = json.loads(out_file.read_text())
        assert sorted(payload) == ["summary", "violations"]
        assert payload["summary"] == {"mode": "shallow"}
        assert payload["violations"] == [
            {
                "path": "src/repro/core/bad.py",
                "line": 5,
                "col": 11,
                "code": "R001",
                "message": (
                    "wall-clock read `time.time` in simulated zone "
                    "'core' (use the simulated `now_us` clock)"
                ),
            }
        ]

    def test_deep_json_summary_carries_cache_stats(self, tmp_path):
        seed_clean_tree(tmp_path)
        out_file = tmp_path / "report.json"
        assert (
            main(
                [
                    "--root",
                    str(tmp_path),
                    "--deep",
                    "--no-cache",
                    "--format",
                    "json",
                    "--output",
                    str(out_file),
                    "-q",
                ]
            )
            == 0
        )
        payload = json.loads(out_file.read_text())
        summary = payload["summary"]
        assert summary["mode"] == "deep"
        assert {"modules_parsed", "modules_reused", "seconds"} <= set(summary)


class TestSarifFormat:
    def test_sarif_minimum_for_code_scanning(self, tmp_path):
        seed_violation_tree(tmp_path)
        out_file = tmp_path / "report.sarif"
        assert (
            main(
                [
                    "--root",
                    str(tmp_path),
                    "--deep",
                    "--no-cache",
                    "--format",
                    "sarif",
                    "--output",
                    str(out_file),
                    "-q",
                ]
            )
            == 1
        )
        sarif = json.loads(out_file.read_text())
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        # The catalog names every rule the driver can emit.
        assert {"R001", "D101", "D102", "D103", "D104", "D105", "W001"} <= rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "R001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/core/bad.py"
        assert location["region"]["startLine"] == 5


class TestUnusedSuppressions:
    def test_stale_disable_reports_w001(self, tmp_path, capsys):
        seed_clean_tree(tmp_path)
        stale = tmp_path / "src" / "repro" / "core" / "stale.py"
        stale.write_text("x = 1  # reprolint: disable=R001\n")
        assert main(["--root", str(tmp_path), "-q"]) == 1
        out = capsys.readouterr().out
        assert "W001" in out and "stale.py" in out

    def test_used_disable_is_not_reported(self):
        source = (
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()  # reprolint: disable=R001\n"
        )
        assert lint_source(source, zone="core", report_unused=True) == []

    def test_docstring_mention_is_not_a_suppression_comment(self):
        source = '"""Use `# reprolint: disable=R001` to suppress."""\n'
        assert lint_source(source, zone="core", report_unused=True) == []

    def test_unused_codes_only_judged_when_their_rule_ran(self):
        # R004 only applies to engine classes; here it never runs, so
        # its suppression is not judged (and not flagged).
        source = "x = 1  # reprolint: disable=D101\n"
        assert lint_source(source, zone="core", report_unused=True) == []


class TestDeadCodeReport:
    def test_dead_code_never_affects_exit_status(self, tmp_path, capsys):
        seed_clean_tree(tmp_path)
        dead = tmp_path / "src" / "repro" / "core" / "orphan.py"
        dead.write_text("def never_called():\n    return 1\n")
        assert (
            main(
                ["--root", str(tmp_path), "--deep", "--no-cache", "--dead-code"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "W002" in out and "never_called" in out

    def test_name_referenced_symbols_stay_live(self, tmp_path, capsys):
        seed_clean_tree(tmp_path)
        cb = tmp_path / "src" / "repro" / "core" / "cb.py"
        cb.write_text(
            "def callback():\n"
            "    return 1\n\n\n"
            "HANDLERS = {'cb': callback}\n"
        )
        assert (
            main(
                ["--root", str(tmp_path), "--deep", "--no-cache", "--dead-code"]
            )
            == 0
        )
        assert "callback" not in capsys.readouterr().out
