"""Fixture-driven tests for the whole-program rules D101-D105.

Each rule has a positive package (a true violation the rule must find)
and a negative package (the compliant twin it must stay silent on)
under ``tests/lint/fixtures/deep/``.  The fixtures are self-contained
mini-projects — their own ``CacheEngine``, ``make_engine`` factory and
``KERNEL_REGISTRY`` — so they exercise the same registry-discovery path
as the real tree, not a hard-coded module list.
"""

from pathlib import Path

import pytest

from repro.lint.deep.cache import load_project
from repro.lint.deep.rules import DEEP_RULES, discover_anchors

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "deep"

CHECKERS = {code: checker for code, _desc, checker in DEEP_RULES}


def run_rule(fixture: str, code: str):
    project, _, _ = load_project(
        FIXTURES / fixture, use_cache=False, scan_roots=(".",)
    )
    anchors = discover_anchors(project)
    return project, anchors, CHECKERS[code](project, anchors)


class TestAnchors:
    def test_engine_classes_come_from_make_engine(self):
        project, anchors, _ = run_rule("d101_bad", "D101")
        assert [c.name for c in anchors.engine_classes] == ["JitterEngine"]
        assert anchors.base_engine is not None
        assert anchors.base_engine.name == "CacheEngine"

    def test_replay_roots_come_from_registry_dict(self):
        project, anchors, _ = run_rule("d103_bad", "D103")
        assert anchors.replay_roots == ["kernels.replay_columnar"]


class TestD101:
    def test_unseeded_draw_two_calls_from_entry_point(self):
        _, _, violations = run_rule("d101_bad", "D101")
        assert len(violations) >= 1
        v = violations[0]
        assert v.code == "D101"
        assert v.path == "helper.py"
        assert "random.random" in v.message
        # Witness chain names the interprocedural path, not just the site.
        assert "jitter" in v.message

    def test_seeded_stream_is_silent(self):
        _, _, violations = run_rule("d101_ok", "D101")
        assert violations == []


class TestD102:
    def test_unaccounted_nand_program_is_flagged(self):
        _, _, violations = run_rule("d102_bad", "D102")
        assert [v.code for v in violations] == ["D102"]
        assert violations[0].path == "engine.py"
        assert "program" in violations[0].message

    def test_accounted_nand_program_is_silent(self):
        _, _, violations = run_rule("d102_ok", "D102")
        assert violations == []


class TestD103:
    def test_impure_decision_pass_is_flagged(self):
        _, _, violations = run_rule("d103_bad", "D103")
        assert len(violations) == 1
        v = violations[0]
        assert v.code == "D103"
        assert "_decide" in v.message
        assert "head" in v.message

    def test_mutation_in_registered_replay_driver_is_allowed(self):
        _, _, violations = run_rule("d103_ok", "D103")
        assert violations == []


class TestD104:
    def test_missing_protocol_and_wallclock_recovery(self):
        _, _, violations = run_rule("d104_bad", "D104")
        codes = [v.code for v in violations]
        assert codes.count("D104") == len(codes) and len(codes) >= 3
        messages = " | ".join(v.message for v in violations)
        # NoCrashEngine misses both methods; ClockEngine's recover
        # reads the wall clock.
        assert "NoCrashEngine" in messages and "crash" in messages
        assert "ClockEngine" in messages and "time.time" in messages

    def test_total_deterministic_protocol_is_silent(self):
        _, _, violations = run_rule("d104_ok", "D104")
        assert violations == []


class TestD105:
    def test_default_drift_and_renamed_parameter(self):
        _, _, violations = run_rule("d105_bad", "D105")
        messages = " | ".join(v.message for v in violations)
        assert all(v.code == "D105" for v in violations)
        assert "record" in messages  # default changed None -> 0
        assert "sizes" in messages and "lengths" in messages  # rename

    def test_matching_signatures_with_defaulted_extras_are_silent(self):
        _, _, violations = run_rule("d105_ok", "D105")
        assert violations == []


class TestSuppression:
    def test_deep_findings_honour_disable_comments(self, tmp_path):
        fixture = FIXTURES / "d103_bad" / "kernels.py"
        source = fixture.read_text(encoding="utf-8").replace(
            "    engine.head = len(keys)",
            "    # reprolint: disable=D103\n    engine.head = len(keys)",
        )
        (tmp_path / "kernels.py").write_text(source, encoding="utf-8")
        project, _, _ = load_project(
            tmp_path, use_cache=False, scan_roots=(".",)
        )
        anchors = discover_anchors(project)
        assert CHECKERS["D103"](project, anchors) == []


@pytest.mark.parametrize("code", sorted(CHECKERS))
def test_every_deep_rule_has_a_true_positive_fixture(code):
    fixture = f"{code.lower()}_bad"
    _, _, violations = run_rule(fixture, code)
    assert any(v.code == code for v in violations)
