"""Unit tests for reprolint rules R001–R008.

Every rule gets the same treatment: a fixture snippet that must fire, a
snippet in an allowlisted zone (or an allowed pattern) that must stay
silent, and a suppressed occurrence that must be honoured.  Snippets are
linted through :func:`repro.lint.engine.lint_source` with an explicit
``zone`` override so they don't need to live at real repo paths.
"""

import textwrap

from repro.lint.engine import classify_zone, lint_source, parse_suppressions
from repro.lint.rules import ALL_RULES, rules_by_code


def lint(source, zone, select=None):
    return lint_source(textwrap.dedent(source), zone=zone, select=select)


def codes(violations):
    return [v.code for v in violations]


class TestRuleRegistry:
    def test_all_rules_have_unique_codes_and_docstrings(self):
        seen = set()
        for rule in ALL_RULES:
            assert rule.code.startswith("R") and len(rule.code) == 4
            assert rule.code not in seen
            seen.add(rule.code)
            assert rule.__doc__ and rule.code in rule.__doc__

    def test_rules_by_code_covers_r001_to_r008(self):
        table = rules_by_code()
        assert sorted(table) == [f"R00{i}" for i in range(1, 9)]


class TestWallClockR001:
    def test_flags_time_time_in_core(self):
        found = lint(
            """
            import time
            STAMP = time.time()
            """,
            zone="core",
        )
        assert codes(found) == ["R001"]
        assert "time.time" in found[0].message

    def test_flags_aliased_perf_counter(self):
        found = lint(
            """
            from time import perf_counter as pc
            def tick():
                return pc()
            """,
            zone="flash",
        )
        assert codes(found) == ["R001"]

    def test_flags_datetime_now(self):
        found = lint(
            """
            import datetime
            def stamp():
                return datetime.datetime.now()
            """,
            zone="workloads",
        )
        assert codes(found) == ["R001"]

    def test_harness_zone_is_allowlisted(self):
        found = lint(
            """
            import time
            t0 = time.perf_counter()
            """,
            zone="harness",
        )
        assert found == []

    def test_suppression_comment_is_honoured(self):
        found = lint(
            """
            import time
            STAMP = time.time()  # reprolint: disable=R001
            """,
            zone="core",
        )
        assert found == []

    def test_simulated_clock_is_fine(self):
        found = lint(
            """
            def advance(now_us, step_us):
                return now_us + step_us
            """,
            zone="core",
        )
        assert found == []


class TestUnseededRandomR002:
    def test_flags_global_random_everywhere(self):
        snippet = """
            import random
            def pick():
                return random.random()
            """
        for zone in ("core", "harness", "tests", "benchmarks"):
            assert codes(lint(snippet, zone=zone)) == ["R002"]

    def test_flags_numpy_legacy_functions(self):
        found = lint(
            """
            import numpy as np
            noise = np.random.rand(10)
            """,
            zone="workloads",
        )
        assert codes(found) == ["R002"]
        assert "default_rng" in found[0].message

    def test_seeded_instances_are_fine(self):
        found = lint(
            """
            import random
            import numpy as np
            rng = random.Random(1234)
            gen = np.random.default_rng(7)
            x = rng.random() + gen.random()
            """,
            zone="core",
        )
        assert found == []

    def test_suppression_on_preceding_comment_line(self):
        found = lint(
            """
            import random
            # this demo deliberately shows the anti-pattern
            # reprolint: disable=R002
            x = random.randint(0, 10)
            """,
            zone="tests",
        )
        assert found == []


class TestSetOrderR003:
    def test_flags_for_loop_over_set_in_core(self):
        found = lint(
            """
            def drain(items):
                pending = set(items)
                for key in pending:
                    yield key
            """,
            zone="core",
        )
        assert codes(found) == ["R003"]

    def test_flags_list_materialisation_of_set(self):
        found = lint(
            """
            def snapshot(blocks):
                free = {b for b in blocks}
                return list(free)
            """,
            zone="flash",
        )
        assert codes(found) == ["R003"]

    def test_sorted_iteration_is_fine(self):
        found = lint(
            """
            def drain(items):
                pending = set(items)
                total = sum(pending)
                low = min(pending)
                return [k for k in sorted(pending)], total, low
            """,
            zone="core",
        )
        assert found == []

    def test_out_of_zone_files_are_not_checked(self):
        found = lint(
            """
            def drain(items):
                pending = set(items)
                return [k for k in pending]
            """,
            zone="harness",
        )
        assert found == []

    def test_scope_isolation_no_false_positive_on_name_collision(self):
        # `member_sgs` is a set-typed attribute elsewhere in the file,
        # but here it is a *list* parameter — must not fire.
        found = lint(
            """
            class Group:
                member_sgs: set[int]

            def count(member_sgs: list) -> int:
                total = 0
                for sg in member_sgs:
                    total += sg
                return total
            """,
            zone="core",
        )
        assert found == []

    def test_set_typed_attribute_access_is_flagged(self):
        found = lint(
            """
            class Group:
                member_sgs: set[int]

            def drain(g):
                return [sg for sg in g.member_sgs]
            """,
            zone="core",
        )
        assert codes(found) == ["R003"]

    def test_suppression_is_honoured(self):
        found = lint(
            """
            def drain(items):
                pending = set(items)
                for key in pending:  # reprolint: disable=R003
                    yield key
            """,
            zone="core",
        )
        assert found == []


class TestBulkScalarPairingR004:
    def test_flags_bulk_without_scalar(self):
        found = lint(
            """
            from repro.baselines.base import CacheEngine

            class FastCache(CacheEngine):
                def lookup_many(self, keys, sizes, now_us, step_us, record=None):
                    return now_us
            """,
            zone="baselines",
        )
        assert codes(found) == ["R004"]
        assert "lookup_many" in found[0].message

    def test_paired_engine_is_fine(self):
        found = lint(
            """
            from repro.baselines.base import CacheEngine

            class FastCache(CacheEngine):
                def lookup(self, key, size, now_us=0.0):
                    return None

                def lookup_many(self, keys, sizes, now_us, step_us, record=None):
                    return now_us
            """,
            zone="baselines",
        )
        assert found == []

    def test_scalar_only_engine_is_fine(self):
        found = lint(
            """
            from repro.baselines.base import CacheEngine

            class PlainCache(CacheEngine):
                def lookup(self, key, size, now_us=0.0):
                    return None
            """,
            zone="baselines",
        )
        assert found == []

    def test_base_class_itself_is_exempt(self):
        found = lint(
            """
            import abc

            class CacheEngine(abc.ABC):
                def delete_many(self, keys, now_us, step_us):
                    return now_us
            """,
            zone="repro",
        )
        assert found == []

    def test_out_of_zone_class_not_checked(self):
        found = lint(
            """
            class HelperCache(DictCache):
                def insert_many(self, keys, sizes, now_us, step_us):
                    return now_us
            """,
            zone="tests",
        )
        assert found == []


class TestFloatIntoIntCounterR005:
    def test_flags_true_division_into_counter(self):
        found = lint(
            """
            def account(stats, nbytes):
                stats.host_write_bytes += nbytes / 2
            """,
            zone="flash",
        )
        assert codes(found) == ["R005"]

    def test_flags_float_argument_to_recorder(self):
        found = lint(
            """
            def account(stats, pages, page_size):
                stats.record_host_write(pages * 0.5 * page_size)
            """,
            zone="core",
        )
        assert codes(found) == ["R005"]

    def test_floor_division_and_int_coercion_are_fine(self):
        found = lint(
            """
            def account(stats, nbytes, scale):
                stats.host_write_bytes += nbytes // 2
                stats.record_host_write(int(nbytes * scale))
                stats.record_host_write(len([nbytes]) * nbytes)
            """,
            zone="flash",
        )
        assert found == []

    def test_non_counter_attributes_are_ignored(self):
        found = lint(
            """
            def measure(model, span):
                model.mean_latency_us = span / 3
            """,
            zone="flash",
        )
        assert found == []

    def test_out_of_zone_not_checked(self):
        found = lint(
            """
            def account(stats, nbytes):
                stats.host_write_bytes += nbytes / 2
            """,
            zone="harness",
        )
        assert found == []


class TestBroadExceptR006:
    def test_flags_silent_broad_except(self):
        found = lint(
            """
            def run(fn):
                try:
                    return fn()
                except Exception:
                    return None
            """,
            zone="harness",
        )
        assert codes(found) == ["R006"]

    def test_flags_bare_except(self):
        found = lint(
            """
            def run(fn):
                try:
                    return fn()
                except:
                    pass
            """,
            zone="tests",
        )
        assert codes(found) == ["R006"]

    def test_reraise_is_fine(self):
        found = lint(
            """
            def run(fn):
                try:
                    return fn()
                except Exception as exc:
                    raise RuntimeError("cell failed") from exc
            """,
            zone="harness",
        )
        assert found == []

    def test_logging_is_fine(self):
        found = lint(
            """
            def run(fn, log):
                try:
                    return fn()
                except Exception as exc:
                    log.warning("degraded: %s", exc)
                    return None
            """,
            zone="harness",
        )
        assert found == []

    def test_narrow_exception_is_fine(self):
        found = lint(
            """
            def run(fn):
                try:
                    return fn()
                except (ValueError, KeyError):
                    return None
            """,
            zone="core",
        )
        assert found == []

    def test_audited_suppression_is_honoured(self):
        found = lint(
            """
            def run(fn):
                try:
                    return fn()
                # Audited degrade point: any failure falls back serially.
                except Exception:  # reprolint: disable=R006
                    return None
            """,
            zone="harness",
        )
        assert found == []


class TestFaultRandomnessR007:
    def test_flags_rng_construction_in_fault_zone(self):
        found = lint(
            """
            import random
            class RetryJitter:
                def __init__(self, seed):
                    self.rng = random.Random(seed)
            """,
            zone="faults",
        )
        assert codes(found) == ["R007"]
        assert "FaultPlan" in found[0].message

    def test_flags_numpy_generator_in_flash_zone(self):
        found = lint(
            """
            import numpy as np
            def jitter(seed):
                return np.random.default_rng(seed)
            """,
            zone="flash",
        )
        assert codes(found) == ["R007"]

    def test_fault_plan_class_is_the_allowed_home(self):
        found = lint(
            """
            import random
            class FaultPlan:
                def __init__(self, seed):
                    self._rng = random.Random(seed)
            """,
            zone="faults",
        )
        assert found == []

    def test_other_zones_unaffected(self):
        found = lint(
            """
            import random
            rng = random.Random(0)
            """,
            zone="workloads",
        )
        assert found == []

    def test_suppression_honoured(self):
        found = lint(
            """
            import random
            # reprolint: disable=R007
            AUDITED = random.Random(0)
            """,
            zone="faults",
        )
        assert found == []

    def test_shipped_fault_layer_is_clean(self):
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent.parent
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--select", "R007",
             "src/repro/faults", "src/repro/flash"],
            cwd=repo,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestColumnarKernelLoopR008:
    def test_flags_for_loop_in_marked_module(self):
        found = lint(
            """
            # reprolint: columnar-kernel-zone
            def decide(requests):
                out = []
                for req in requests:
                    out.append(req * 2)
                return out
            """,
            zone="harness",
        )
        assert codes(found) == ["R008"]
        assert "columnar-kernel-zone" in found[0].message

    def test_flags_while_loop_in_marked_module(self):
        found = lint(
            """
            # reprolint: columnar-kernel-zone
            def drain(queue):
                while queue:
                    queue.pop()
            """,
            zone="harness",
        )
        assert codes(found) == ["R008"]
        assert "`while`" in found[0].message

    def test_unmarked_module_unaffected(self):
        found = lint(
            """
            def decide(requests):
                for req in requests:
                    pass
            """,
            zone="harness",
            select=["R008"],
        )
        assert found == []

    def test_comprehensions_and_genexprs_exempt(self):
        found = lint(
            """
            # reprolint: columnar-kernel-zone
            def plan(flushes):
                pages = [f.page for f in flushes]
                total = sum(f.bytes for f in flushes)
                by_zone = {f.zone: f for f in flushes}
                return pages, total, by_zone
            """,
            zone="harness",
        )
        assert found == []

    def test_audited_mutation_loop_suppressed(self):
        found = lint(
            """
            # reprolint: columnar-kernel-zone
            def mutate(index, evictions):
                # Compact state-mutation loop over evictions, not requests.
                # reprolint: disable=R008
                for key in evictions:
                    del index[key]
            """,
            zone="harness",
        )
        assert found == []

    def test_shipped_columnar_kernel_is_clean(self):
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent.parent
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--select", "R008",
             "src/repro/harness"],
            cwd=repo,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestEngineHelpers:
    def test_zone_classification(self):
        assert classify_zone("src/repro/core/nemo.py") == "core"
        assert classify_zone("src/repro/flash/ftl.py") == "flash"
        assert classify_zone("src/repro/harness/runner.py") == "harness"
        assert classify_zone("src/repro/cli.py") == "repro"
        assert classify_zone("benchmarks/bench_replay.py") == "benchmarks"
        assert classify_zone("tests/core/test_nemo.py") == "tests"
        assert classify_zone("setup.py") == "other"

    def test_devsim_files_inherit_the_simulated_flash_zone(self):
        """The event-driven device lane (DESIGN.md §9) lives under
        ``src/repro/flash/devsim/`` and must classify into the ``flash``
        zone so the simulated-zone determinism contracts (R001
        wall-clock, R007 fault randomness) apply to it."""
        for module in ("event", "nand", "model", "frontend", "factory"):
            path = f"src/repro/flash/devsim/{module}.py"
            assert classify_zone(path) == "flash", path

    def test_simulated_zone_rules_fire_for_devsim_style_code(self):
        """A devsim-zoned snippet reading the wall clock and drawing
        unseeded randomness trips both determinism rules — pinning that
        the event loop's virtual time cannot silently grow host-clock
        or RNG dependencies."""
        found = lint(
            """
            import random
            import time

            def jitter():
                return time.perf_counter() + random.random()
            """,
            zone="flash",
            select={"R001", "R002"},
        )
        assert sorted(codes(found)) == ["R001", "R002"]

    def test_parse_suppressions_same_line_and_next_line(self):
        sup = parse_suppressions(
            "x = 1  # reprolint: disable=R001\n"
            "# reprolint: disable=R002, R003\n"
            "y = 2\n"
        )
        assert sup[1] == {"R001"}
        assert sup[2] == {"R002", "R003"}
        assert sup[3] == {"R002", "R003"}

    def test_disable_all(self):
        found = lint(
            """
            import time
            STAMP = time.time()  # reprolint: disable=all
            """,
            zone="core",
        )
        assert found == []

    def test_select_restricts_rules(self):
        source = """
            import time
            import random
            A = time.time()
            B = random.random()
            """
        assert codes(lint(source, zone="core")) == ["R001", "R002"]
        assert codes(lint(source, zone="core", select={"R002"})) == ["R002"]
