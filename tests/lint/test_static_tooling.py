"""Static-tooling configuration checks.

mypy and ruff run in the CI ``lint`` job; this container doesn't ship
them, so the subprocess checks skip gracefully when the tools are
absent and the configuration assertions stay text-based (no ``tomllib``
— the test matrix includes Python 3.10).
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
PYPROJECT = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")


class TestPyprojectConfig:
    def test_mypy_section_pins_strict_scope(self):
        assert "[tool.mypy]" in PYPROJECT
        assert "strict = true" in PYPROJECT
        for pkg in ("src/repro/core", "src/repro/flash", "src/repro/harness"):
            assert pkg in PYPROJECT

    def test_ruff_section_selects_expected_families(self):
        assert "[tool.ruff]" in PYPROJECT
        assert "[tool.ruff.lint]" in PYPROJECT
        for family in ('"E"', '"F"', '"W"', '"I"'):
            assert family in PYPROJECT

    def test_lint_extra_declared(self):
        assert "lint = [" in PYPROJECT
        assert "mypy" in PYPROJECT and "ruff" in PYPROJECT


class TestToolRuns:
    @pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
    def test_mypy_strict_passes(self):
        proc = subprocess.run(
            ["mypy"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    @pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
    def test_ruff_check_passes(self):
        proc = subprocess.run(
            ["ruff", "check", "."],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
