"""Tests for the ``python -m repro`` replay CLI."""

import pytest

from repro.cli import build_engine, main, make_parser
from repro.flash.geometry import FlashGeometry


class TestParser:
    def test_defaults(self):
        args = make_parser().parse_args([])
        assert args.engine == "nemo"
        assert args.requests == 200_000

    def test_engine_choices(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--engine", "bogus"])


class TestBuildEngine:
    @pytest.mark.parametrize("name", ["nemo", "log", "set", "fw", "kg"])
    def test_all_engines_constructible(self, name):
        geometry = FlashGeometry(
            page_size=4096, pages_per_block=64, num_blocks=32, blocks_per_zone=4
        )
        args = make_parser().parse_args([])
        engine = build_engine(name, geometry, args)
        assert engine.object_count() == 0

    def test_unknown_engine(self):
        geometry = FlashGeometry()
        args = make_parser().parse_args([])
        with pytest.raises(ValueError):
            build_engine("bogus", geometry, args)


class TestProfile:
    def test_profile_subcommand(self, capsys):
        rc = main(["profile", "table6", "--scale", "micro", "--lines", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cumulative" in out
        assert "function calls" in out

    def test_profile_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["profile", "bogus"])


class TestEndToEnd:
    def test_synthetic_replay(self, capsys):
        rc = main(
            ["--engine", "log", "--requests", "5000", "--zones", "4",
             "--wss-scale", "0.0001"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "WA" in out and "Log" in out

    def test_csv_replay(self, tmp_path, capsys):
        csv = tmp_path / "trace.csv"
        csv.write_text("0,k1,20,200,1,get,0\n1,k1,20,200,1,get,0\n" * 100)
        rc = main(["--engine", "log", "--requests", "150", "--zones", "4",
                   "--trace-csv", str(csv)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace" in out


class TestReplaySubcommand:
    def test_columnar_kernel_lane(self, capsys):
        rc = main(
            ["replay", "--engine", "log", "--kernel", "columnar",
             "--requests", "5000", "--zones", "4", "--wss-scale", "0.0001"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "columnar" in out and "Log" in out

    def test_sharded_replay_matches_serial(self, capsys):
        common = ["replay", "--engine", "log", "--kernel", "columnar",
                  "--requests", "8000", "--zones", "8",
                  "--wss-scale", "0.0002"]
        assert main(common) == 0
        serial = capsys.readouterr().out
        assert main(common + ["--shards", "2", "--jobs", "1"]) == 0
        sharded = capsys.readouterr().out
        # Identical metric columns; only the wall-time column may differ.
        strip = lambda s: [  # noqa: E731
            line.rsplit(None, 2)[0] for line in s.splitlines() if line
        ]
        assert strip(serial) == strip(sharded)

    def test_kernel_choices(self):
        with pytest.raises(SystemExit):
            main(["replay", "--kernel", "bogus"])


class TestLatencyLaneFlag:
    _common = ["replay", "--engine", "log", "--requests", "5000",
               "--zones", "4", "--wss-scale", "0.0001"]

    @pytest.mark.parametrize("lane", ["analytic", "event"])
    def test_lane_prints_percentiles(self, lane, capsys):
        rc = main(self._common + ["--latency-lane", lane])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"latency[{lane}] Log:" in out
        assert "p50=" in out and "p99=" in out and "p99.99=" in out

    def test_lane_demotes_columnar_kernel_with_warning(self, capsys):
        rc = main(
            self._common + ["--kernel", "columnar", "--latency-lane", "event"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # A timed replay cannot use the whole-trace kernel; the harness
        # demotes to the batched loop and the CLI surfaces the note.
        assert "warning:" in out
        assert "latency models need per-request timing" in out
        assert "latency[event] Log:" in out

    def test_shards_cannot_carry_a_latency_lane(self):
        with pytest.raises(SystemExit):
            main(
                ["replay", "--engine", "log", "--shards", "2",
                 "--latency-lane", "event"]
            )

    def test_lane_choices(self):
        with pytest.raises(SystemExit):
            main(["replay", "--latency-lane", "bogus"])

    def test_faults_replay_accepts_a_lane(self, capsys):
        rc = main(
            ["faults", "--engine", "log", "--requests", "4000", "--zones", "4",
             "--wss-scale", "0.0002", "--read-error-rate", "0",
             "--program-error-rate", "0", "--erase-error-rate", "0",
             "--latency-lane", "event"]
        )
        assert rc == 0
        assert "Log" in capsys.readouterr().out


class TestFaultsSubcommand:
    def test_fault_sweep_reports_counters(self, capsys):
        rc = main(
            ["faults", "--engine", "set", "--requests", "8000", "--zones", "4",
             "--wss-scale", "0.0002", "--read-error-rate", "0.01",
             "--erase-error-rate", "0.01", "--spare-blocks", "1000",
             "--crash-at", "3000"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "retries" in out and "retired" in out
        assert "crash_at=[3000]" in out

    def test_spare_exhaustion_reported_as_eol(self, capsys):
        rc = main(
            ["faults", "--engine", "set", "--requests", "8000", "--zones", "4",
             "--wss-scale", "0.0002", "--program-error-rate", "0.05",
             "--spare-blocks", "2"]
        )
        assert rc == 0
        assert "(EOL)" in capsys.readouterr().out

    def test_zero_rates_run_clean(self, capsys):
        rc = main(
            ["faults", "--engine", "log", "--requests", "4000", "--zones", "4",
             "--wss-scale", "0.0002", "--read-error-rate", "0",
             "--program-error-rate", "0", "--erase-error-rate", "0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Log" in out
