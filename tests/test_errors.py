"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for name in (
            "ConfigError",
            "DeviceError",
            "OutOfSpaceError",
            "ZoneStateError",
            "AlignmentError",
            "ReadError",
            "FTLError",
            "CacheError",
            "ObjectTooLargeError",
            "EngineStateError",
            "TraceError",
        ):
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError), name

    def test_value_error_compat(self):
        """Config/size/trace errors double as ValueError for callers."""
        assert issubclass(errors.ConfigError, ValueError)
        assert issubclass(errors.ObjectTooLargeError, ValueError)
        assert issubclass(errors.TraceError, ValueError)
        assert issubclass(errors.AlignmentError, ValueError)

    def test_device_family(self):
        for name in ("OutOfSpaceError", "ZoneStateError", "ReadError", "FTLError"):
            assert issubclass(getattr(errors, name), errors.DeviceError)

    def test_catchable_as_family(self):
        with pytest.raises(errors.ReproError):
            raise errors.ZoneStateError("x")
        with pytest.raises(errors.CacheError):
            raise errors.ObjectTooLargeError("x")
