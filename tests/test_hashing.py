"""Unit + property tests for the shared hashing primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import (
    bucket_of,
    hash64,
    hash_pair,
    splitmix64,
    splitmix64_array,
)


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_known_nonzero(self):
        assert splitmix64(0) != 0

    def test_stays_in_64_bits(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) < 2**64

    def test_seeded_hashes_differ(self):
        assert hash64(123, seed=0) != hash64(123, seed=1)

    def test_hash_pair_is_two_distinct_functions(self):
        h1, h2 = hash_pair(99)
        assert h1 != h2


class TestBuckets:
    def test_bucket_in_range(self):
        for key in range(1000):
            assert 0 <= bucket_of(key, 37) < 37

    def test_bucket_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bucket_of(1, 0)

    def test_buckets_roughly_uniform(self):
        counts = np.bincount(
            [bucket_of(k, 16) for k in range(16_000)], minlength=16
        )
        # Each bucket should get 1000 +- 15 %.
        assert counts.min() > 850
        assert counts.max() < 1150


class TestVectorised:
    def test_matches_scalar(self):
        keys = np.arange(100, dtype=np.int64)
        vec = splitmix64_array(keys, seed=5)
        for i in range(100):
            assert int(vec[i]) == hash64(i, seed=5)

    def test_empty_array(self):
        assert splitmix64_array(np.array([], dtype=np.int64)).size == 0


@given(st.integers(0, 2**64 - 1))
def test_splitmix_is_injective_locally(x):
    """Consecutive inputs never collide (splitmix64 is a bijection)."""
    assert splitmix64(x) != splitmix64((x + 1) & (2**64 - 1))


@given(st.integers(0, 2**62), st.integers(1, 10_000))
def test_bucket_always_in_range(key, n):
    assert 0 <= bucket_of(key, n) < n
