"""The package root exports a stable, importable public API."""

import importlib

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackages_import(self):
        for module in (
            "repro.flash",
            "repro.workloads",
            "repro.baselines",
            "repro.core",
            "repro.analysis",
            "repro.harness",
            "repro.cluster",
            "repro.experiments",
        ):
            importlib.import_module(module)

    def test_engines_share_interface(self):
        from repro import (
            CacheEngine,
            FairyWrenCache,
            KangarooCache,
            LogStructuredCache,
            NemoCache,
            SetAssociativeCache,
        )

        for engine_cls in (
            LogStructuredCache,
            SetAssociativeCache,
            FairyWrenCache,
            KangarooCache,
            NemoCache,
        ):
            assert issubclass(engine_cls, CacheEngine)

    def test_quickstart_snippet_runs(self, tiny_geometry):
        """The README quickstart pattern works end to end."""
        from repro import NemoCache, NemoConfig, merged_twitter_trace, replay

        cache = NemoCache(
            tiny_geometry,
            NemoConfig(flush_threshold=4, sgs_per_index_group=2, bf_capacity_per_set=20),
        )
        trace = merged_twitter_trace(num_requests=5_000, wss_scale=1 / 8192)
        result = replay(cache, trace)
        assert result.num_requests == 5_000
        assert "Nemo" in result.summary()
