"""Tests for the seeded arrival processes feeding the devsim frontend."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workloads.arrivals import (
    assign_classes,
    bursty_arrivals,
    fixed_arrivals,
    poisson_arrivals,
)


class TestFixed:
    def test_even_spacing(self):
        out = fixed_arrivals(4, 50_000.0)
        assert out.tolist() == [0.0, 20.0, 40.0, 60.0]

    def test_empty(self):
        assert len(fixed_arrivals(0, 1000.0)) == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            fixed_arrivals(-1, 1000.0)
        with pytest.raises(ConfigError):
            fixed_arrivals(10, 0.0)


class TestRandomProcesses:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_non_decreasing_and_deterministic(self, seed):
        for make in (
            lambda: poisson_arrivals(500, 40_000.0, seed=seed),
            lambda: bursty_arrivals(500, 40_000.0, seed=seed),
        ):
            a, b = make(), make()
            assert np.array_equal(a, b)
            assert (np.diff(a) >= 0.0).all()

    def test_mean_rate_preserved(self):
        # Both processes must average the requested rate: the bursty
        # gaps are rescaled exactly so bursts don't inflate the mean.
        n, rate = 200_000, 50_000.0
        for make in (poisson_arrivals, bursty_arrivals):
            out = make(n, rate, seed=3)
            mean_gap = out[-1] / n
            assert mean_gap == pytest.approx(1e6 / rate, rel=0.05)

    def test_bursty_gaps_are_bimodal(self):
        gaps = np.diff(bursty_arrivals(50_000, 50_000.0, seed=1))
        mean_gap = 20.0
        # A meaningful share of gaps sits well below the mean (burst
        # mode at 8x the rate) and a meaningful share well above (idle
        # mode) — a plain Poisson process concentrates around the mean.
        assert (gaps < mean_gap / 4).mean() > 0.2
        assert (gaps > mean_gap * 1.5).mean() > 0.1

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            bursty_arrivals(100, 1000.0, seed=0),
            bursty_arrivals(100, 1000.0, seed=1),
        )

    def test_rejects_bad_burst_parameters(self):
        with pytest.raises(ConfigError):
            bursty_arrivals(10, 1000.0, burst_factor=1.0)
        with pytest.raises(ConfigError):
            bursty_arrivals(10, 1000.0, burst_fraction=1.0)
        with pytest.raises(ConfigError):
            bursty_arrivals(10, 1000.0, mean_burst=0)


class TestAssignClasses:
    def test_ids_in_range_and_deterministic(self):
        a = assign_classes(1000, (0.8, 0.2), seed=5)
        b = assign_classes(1000, (0.8, 0.2), seed=5)
        assert np.array_equal(a, b)
        assert a.dtype == np.int64
        assert set(np.unique(a)) <= {0, 1}

    def test_shares_respected(self):
        ids = assign_classes(100_000, (0.8, 0.2), seed=0)
        assert (ids == 0).mean() == pytest.approx(0.8, abs=0.02)

    def test_unnormalised_shares_accepted(self):
        ids = assign_classes(1000, (3.0, 1.0), seed=0)
        assert (ids == 0).mean() == pytest.approx(0.75, abs=0.1)

    def test_rejects_bad_shares(self):
        with pytest.raises(ConfigError):
            assign_classes(10, ())
        with pytest.raises(ConfigError):
            assign_classes(10, (0.5, 0.0))
        with pytest.raises(ConfigError):
            assign_classes(-1, (1.0,))
