"""Unit tests for trace merging (§5.1 protocol)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.mixer import merged_twitter_trace, proportional_interleave
from repro.workloads.trace import OP_GET, Trace


def flat_trace(name, keys):
    keys = np.asarray(keys)
    return Trace(
        ops=np.full(len(keys), OP_GET, dtype=np.uint8),
        keys=keys,
        sizes=np.full(len(keys), 100),
        name=name,
    )


class TestInterleave:
    def test_preserves_all_requests(self):
        a = flat_trace("a", np.arange(10))
        b = flat_trace("b", np.arange(100, 105))
        mix = proportional_interleave([a, b])
        assert len(mix) == 15
        assert sorted(mix.keys) == sorted(list(range(10)) + list(range(100, 105)))

    def test_preserves_per_trace_order(self):
        a = flat_trace("a", [0, 1, 2, 3])
        b = flat_trace("b", [100, 101])
        mix = proportional_interleave([a, b])
        a_positions = [k for k in mix.keys if k < 100]
        b_positions = [k for k in mix.keys if k >= 100]
        assert a_positions == [0, 1, 2, 3]
        assert b_positions == [100, 101]

    def test_no_long_runs(self):
        """Equal-length inputs alternate — no workload-dominated period."""
        a = flat_trace("a", np.zeros(50, dtype=int))
        b = flat_trace("b", np.ones(50, dtype=int) * 999)
        mix = proportional_interleave([a, b])
        longest = run = 1
        for prev, cur in zip(mix.keys, mix.keys[1:]):
            run = run + 1 if (prev == cur) else 1
            longest = max(longest, run)
        assert longest <= 2

    def test_empty_inputs_rejected(self):
        with pytest.raises(TraceError):
            proportional_interleave([])
        with pytest.raises(TraceError):
            proportional_interleave([flat_trace("a", np.array([], dtype=int))])

    def test_proportional_spread(self):
        """A 3:1 mix keeps the minority spread across the whole trace."""
        a = flat_trace("a", np.zeros(90, dtype=int))
        b = flat_trace("b", np.ones(30, dtype=int))
        mix = proportional_interleave([a, b])
        b_positions = np.nonzero(mix.keys == 1)[0]
        # The minority's first/last appearances are near the ends.
        assert b_positions[0] < 10
        assert b_positions[-1] > len(mix) - 10


class TestMergedTwitter:
    def test_disjoint_key_spaces(self):
        mix = merged_twitter_trace(num_requests=8000, wss_scale=1 / 4096)
        comps = mix.meta["components"]
        assert len(comps) == 4

    def test_mean_object_size_is_tiny(self):
        mix = merged_twitter_trace(num_requests=20_000, wss_scale=1 / 2048)
        assert 150 < mix.mean_request_size < 400

    def test_deterministic(self):
        a = merged_twitter_trace(num_requests=4000, seed=9)
        b = merged_twitter_trace(num_requests=4000, seed=9)
        assert np.array_equal(a.keys, b.keys)

    def test_too_few_requests_rejected(self):
        with pytest.raises(TraceError):
            merged_twitter_trace(num_requests=2)

    def test_all_clusters_continuously_present(self):
        """Each quarter of the merged trace contains all four clusters."""
        mix = merged_twitter_trace(num_requests=8000, wss_scale=1 / 4096)
        # Key spaces are stacked: find cluster by key range boundaries.
        quarters = np.array_split(np.arange(len(mix)), 4)
        # Build the key-range boundaries from the merged key population.
        keys = mix.keys
        for q in quarters:
            # With 4 interleaved clusters, any contiguous quarter spans
            # a wide range of key ids across the stacked key spaces.
            assert keys[q].max() - keys[q].min() > mix.num_keys * 0.3
