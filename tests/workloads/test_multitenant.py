"""Multi-tenant trace generation: determinism, shares, namespacing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.tenancy import tenant_of_array
from repro.errors import TraceError
from repro.workloads.multitenant import (
    TenantSpec,
    multi_tenant_trace,
    tenant_quotas,
)
from repro.workloads.trace import OP_GET


def _specs():
    return [
        TenantSpec(name="hot", zipf_alpha=1.3, num_keys=500),
        TenantSpec(
            name="warm",
            zipf_alpha=0.9,
            num_keys=1_000,
            request_share=3.0,
            quota_bytes=1 << 20,
        ),
    ]


class TestSpecValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(TraceError):
            TenantSpec(name="")

    def test_rejects_bad_share(self):
        with pytest.raises(TraceError):
            TenantSpec(name="t", request_share=0)

    def test_rejects_negative_quota(self):
        with pytest.raises(TraceError):
            TenantSpec(name="t", quota_bytes=-5)

    def test_rejects_bad_get_fraction(self):
        with pytest.raises(TraceError):
            TenantSpec(name="t", get_fraction=1.5)


class TestQuotaMap:
    def test_only_quotaed_tenants_listed(self):
        quotas = tenant_quotas(_specs())
        assert quotas == {2: 1 << 20}


class TestGeneration:
    def test_deterministic(self):
        a = multi_tenant_trace(_specs(), num_requests=4_000, seed=5)
        b = multi_tenant_trace(_specs(), num_requests=4_000, seed=5)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.ops, b.ops)
        assert np.array_equal(a.sizes, b.sizes)

    def test_seed_changes_trace(self):
        a = multi_tenant_trace(_specs(), num_requests=4_000, seed=5)
        b = multi_tenant_trace(_specs(), num_requests=4_000, seed=6)
        assert not np.array_equal(a.keys, b.keys)

    def test_request_share_split(self):
        trace = multi_tenant_trace(_specs(), num_requests=4_000)
        tenants = tenant_of_array(trace.keys)
        assert int(np.count_nonzero(tenants == 1)) == 1_000
        assert int(np.count_nonzero(tenants == 2)) == 3_000
        assert trace.meta["tenant_requests"] == {"hot": 1_000, "warm": 3_000}

    def test_keys_namespaced_by_position(self):
        trace = multi_tenant_trace(_specs(), num_requests=2_000)
        assert trace.meta["tenants"] == {"hot": 1, "warm": 2}
        assert set(np.unique(tenant_of_array(trace.keys))) == {1, 2}

    def test_get_fraction_respected(self):
        specs = [TenantSpec(name="ro", get_fraction=1.0, num_keys=100)]
        trace = multi_tenant_trace(specs, num_requests=1_000)
        assert np.all(trace.ops == OP_GET)

    def test_total_key_space(self):
        trace = multi_tenant_trace(_specs(), num_requests=2_000)
        assert trace.num_keys == 1_500

    def test_duplicate_names_rejected(self):
        specs = [TenantSpec(name="x"), TenantSpec(name="x")]
        with pytest.raises(TraceError):
            multi_tenant_trace(specs, num_requests=100)

    def test_too_few_requests_rejected(self):
        with pytest.raises(TraceError):
            multi_tenant_trace(_specs(), num_requests=1)

    def test_empty_specs_rejected(self):
        with pytest.raises(TraceError):
            multi_tenant_trace([], num_requests=100)
