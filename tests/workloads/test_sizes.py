"""Unit tests for per-key object-size models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.workloads.sizes import FixedSizeModel, LogNormalSizeModel, NormalSizeModel


class TestFixed:
    def test_all_equal(self):
        table = FixedSizeModel(250).build_table(100, np.random.default_rng(0))
        assert np.all(table == 250)

    def test_mean(self):
        assert FixedSizeModel(99).mean_size == 99.0

    def test_rejects_nonpositive(self):
        with pytest.raises(TraceError):
            FixedSizeModel(0)


class TestNormal:
    def test_respects_minimum(self):
        table = NormalSizeModel(100, 300, minimum=32).build_table(
            5000, np.random.default_rng(1)
        )
        assert table.min() >= 32

    def test_mean_near_parameter(self):
        table = NormalSizeModel(250, 50).build_table(20_000, np.random.default_rng(2))
        assert table.mean() == pytest.approx(250, rel=0.05)

    def test_rejects_bad_params(self):
        with pytest.raises(TraceError):
            NormalSizeModel(-1, 10)
        with pytest.raises(TraceError):
            NormalSizeModel(100, -1)
        with pytest.raises(TraceError):
            NormalSizeModel(100, 10, minimum=0)


class TestLogNormal:
    def test_mean_targets_parameter(self):
        table = LogNormalSizeModel(400, sigma=0.5).build_table(
            50_000, np.random.default_rng(3)
        )
        assert table.mean() == pytest.approx(400, rel=0.05)

    def test_right_skewed(self):
        table = LogNormalSizeModel(300, sigma=0.8).build_table(
            50_000, np.random.default_rng(4)
        )
        assert np.median(table) < table.mean()

    def test_rejects_bad_params(self):
        with pytest.raises(TraceError):
            LogNormalSizeModel(0)
        with pytest.raises(TraceError):
            LogNormalSizeModel(100, sigma=-0.1)


@settings(max_examples=20, deadline=None)
@given(mean=st.floats(50, 2000), sigma=st.floats(0.0, 1.0))
def test_lognormal_tables_are_positive_ints(mean, sigma):
    table = LogNormalSizeModel(mean, sigma=sigma).build_table(
        200, np.random.default_rng(0)
    )
    assert table.dtype == np.int64
    assert table.min() >= 1
