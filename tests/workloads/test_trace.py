"""Unit tests for the Trace container."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.hashing import hash64
from repro.workloads.trace import OP_GET, OP_SET, Trace


def make_trace(n=10):
    return Trace(
        ops=np.full(n, OP_GET, dtype=np.uint8),
        keys=np.arange(n),
        sizes=np.full(n, 100),
        name="t",
    )


class TestConstruction:
    def test_length(self):
        assert len(make_trace(7)) == 7

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(TraceError):
            Trace(ops=np.zeros(3, dtype=np.uint8), keys=np.arange(2), sizes=np.ones(3))

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(TraceError):
            Trace(
                ops=np.zeros(2, dtype=np.uint8),
                keys=np.arange(2),
                sizes=np.array([10, 0]),
            )

    def test_num_keys_inferred(self):
        t = make_trace(5)
        assert t.num_keys == 5


class TestStatistics:
    def test_mean_object_size_over_distinct_keys(self):
        t = Trace(
            ops=np.zeros(3, dtype=np.uint8),
            keys=np.array([1, 1, 2]),
            sizes=np.array([100, 100, 300]),
        )
        assert t.mean_object_size == 200.0
        assert t.mean_request_size == pytest.approx(500 / 3)

    def test_working_set_counts_each_key_once(self):
        t = Trace(
            ops=np.zeros(4, dtype=np.uint8),
            keys=np.array([1, 1, 2, 2]),
            sizes=np.array([100, 100, 300, 300]),
        )
        assert t.working_set_bytes == 400
        assert t.unique_key_count == 2

    def test_op_mix(self):
        t = Trace(
            ops=np.array([OP_GET, OP_GET, OP_SET], dtype=np.uint8),
            keys=np.arange(3),
            sizes=np.ones(3),
        )
        mix = t.op_mix()
        assert mix["get"] == pytest.approx(2 / 3)
        assert mix["set"] == pytest.approx(1 / 3)

    def test_describe_has_counts(self):
        assert "10" in make_trace(10).describe()


class TestColumns:
    def test_set_ids_match_scalar_hash(self):
        keys = np.array([0, 1, 7, 2**40, 12345], dtype=np.int64)
        t = Trace(
            ops=np.zeros(5, dtype=np.uint8),
            keys=keys,
            sizes=np.full(5, 100),
        )
        cols = t.columns(seed=3, num_sets=37)
        assert cols.set_ids.tolist() == [
            hash64(int(k), 3) % 37 for k in keys
        ]
        assert cols.hashes.tolist() == [hash64(int(k), 3) for k in keys]
        assert cols.sg_ids is None

    def test_sg_ids_partition_sets(self):
        t = make_trace(20)
        cols = t.columns(seed=0, num_sets=16, sets_per_sg=4)
        assert cols.sg_ids.tolist() == (cols.set_ids // 4).tolist()

    def test_columns_cached_per_spec(self):
        t = make_trace(10)
        a = t.columns(seed=1, num_sets=8)
        assert t.columns(seed=1, num_sets=8) is a
        assert t.columns(seed=2, num_sets=8) is not a
        assert t.columns(seed=1, num_sets=9) is not a

    def test_invalid_specs_rejected(self):
        t = make_trace(4)
        with pytest.raises(TraceError):
            t.columns(seed=0, num_sets=0)
        with pytest.raises(TraceError):
            t.columns(seed=0, num_sets=8, sets_per_sg=0)

    def test_views_start_with_fresh_kernel_cache(self):
        t = make_trace(10)
        t._kernel_cache["probe"] = object()
        t.columns(seed=0, num_sets=8)
        s = t.slice(0, 5)
        assert s._kernel_cache == {}
        assert s._column_cache == {}

    def test_adopt_columns_seeds_cache(self):
        """A rebuilt sub-trace adopting the parent's pre-sliced columns
        serves them from the cache instead of rehashing."""
        parent = make_trace(10)
        cols = parent.columns(seed=3, num_sets=8)
        idx = np.array([1, 4, 7])
        from repro.workloads.trace import TraceColumns

        child = Trace(
            ops=parent.ops[idx],
            keys=parent.keys[idx],
            sizes=parent.sizes[idx],
        )
        shipped = TraceColumns(
            seed=3,
            num_sets=8,
            hashes=cols.hashes[idx],
            set_ids=cols.set_ids[idx],
        )
        child.adopt_columns(shipped)
        assert child.columns(seed=3, num_sets=8) is shipped
        # The adopted values equal what the child would have computed.
        fresh = Trace(
            ops=parent.ops[idx],
            keys=parent.keys[idx],
            sizes=parent.sizes[idx],
        ).columns(seed=3, num_sets=8)
        assert np.array_equal(shipped.hashes, fresh.hashes)
        assert np.array_equal(shipped.set_ids, fresh.set_ids)

    def test_adopt_columns_rejects_length_mismatch(self):
        parent = make_trace(10)
        cols = parent.columns(seed=0, num_sets=8)
        child = make_trace(5)
        with pytest.raises(TraceError):
            child.adopt_columns(cols)


class TestViews:
    def test_slice(self):
        t = make_trace(10)
        s = t.slice(2, 5)
        assert len(s) == 3
        assert list(s.keys) == [2, 3, 4]

    def test_repeat(self):
        t = make_trace(3)
        r = t.repeat(3)
        assert len(r) == 9
        assert list(r.keys[:3]) == list(r.keys[3:6])

    def test_repeat_rejects_zero(self):
        with pytest.raises(TraceError):
            make_trace(2).repeat(0)
