"""Unit tests for the Trace container."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.trace import OP_GET, OP_SET, Trace


def make_trace(n=10):
    return Trace(
        ops=np.full(n, OP_GET, dtype=np.uint8),
        keys=np.arange(n),
        sizes=np.full(n, 100),
        name="t",
    )


class TestConstruction:
    def test_length(self):
        assert len(make_trace(7)) == 7

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(TraceError):
            Trace(ops=np.zeros(3, dtype=np.uint8), keys=np.arange(2), sizes=np.ones(3))

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(TraceError):
            Trace(
                ops=np.zeros(2, dtype=np.uint8),
                keys=np.arange(2),
                sizes=np.array([10, 0]),
            )

    def test_num_keys_inferred(self):
        t = make_trace(5)
        assert t.num_keys == 5


class TestStatistics:
    def test_mean_object_size_over_distinct_keys(self):
        t = Trace(
            ops=np.zeros(3, dtype=np.uint8),
            keys=np.array([1, 1, 2]),
            sizes=np.array([100, 100, 300]),
        )
        assert t.mean_object_size == 200.0
        assert t.mean_request_size == pytest.approx(500 / 3)

    def test_working_set_counts_each_key_once(self):
        t = Trace(
            ops=np.zeros(4, dtype=np.uint8),
            keys=np.array([1, 1, 2, 2]),
            sizes=np.array([100, 100, 300, 300]),
        )
        assert t.working_set_bytes == 400
        assert t.unique_key_count == 2

    def test_op_mix(self):
        t = Trace(
            ops=np.array([OP_GET, OP_GET, OP_SET], dtype=np.uint8),
            keys=np.arange(3),
            sizes=np.ones(3),
        )
        mix = t.op_mix()
        assert mix["get"] == pytest.approx(2 / 3)
        assert mix["set"] == pytest.approx(1 / 3)

    def test_describe_has_counts(self):
        assert "10" in make_trace(10).describe()


class TestViews:
    def test_slice(self):
        t = make_trace(10)
        s = t.slice(2, 5)
        assert len(s) == 3
        assert list(s.keys) == [2, 3, 4]

    def test_repeat(self):
        t = make_trace(3)
        r = t.repeat(3)
        assert len(r) == 9
        assert list(r.keys[:3]) == list(r.keys[3:6])

    def test_repeat_rejects_zero(self):
        with pytest.raises(TraceError):
            make_trace(2).repeat(0)
