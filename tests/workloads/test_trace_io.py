"""Unit tests for trace persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.trace import OP_GET, Trace
from repro.workloads.trace_io import load_trace, save_trace


@pytest.fixture
def trace():
    return Trace(
        ops=np.full(5, OP_GET, dtype=np.uint8),
        keys=np.arange(5),
        sizes=np.full(5, 123),
        name="roundtrip",
        meta={"zipf_alpha": 1.2},
    )


class TestRoundtrip:
    def test_roundtrip_preserves_arrays(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(path)
        assert np.array_equal(loaded.ops, trace.ops)
        assert np.array_equal(loaded.keys, trace.keys)
        assert np.array_equal(loaded.sizes, trace.sizes)

    def test_roundtrip_preserves_metadata(self, trace, tmp_path):
        loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
        assert loaded.name == "roundtrip"
        assert loaded.meta["zipf_alpha"] == 1.2
        assert loaded.num_keys == trace.num_keys

    def test_suffix_appended(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_creates_parent_dirs(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "a" / "b" / "t.npz")
        assert path.exists()

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "absent.npz")
