"""Unit tests for the synthetic Twitter cluster generators (Table 5)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.trace import OP_GET, OP_SET
from repro.workloads.twitter import (
    TWITTER_CLUSTERS,
    average_mixed_object_size,
    generate_cluster_trace,
)


class TestSpecs:
    def test_table5_clusters_present(self):
        assert set(TWITTER_CLUSTERS) == {
            "cluster_14",
            "cluster_29",
            "cluster_34",
            "cluster_52",
        }

    def test_table5_values(self):
        c14 = TWITTER_CLUSTERS["cluster_14"]
        assert (c14.key_size, c14.value_size) == (96, 414)
        assert c14.zipf_alpha == pytest.approx(1.2959)
        c52 = TWITTER_CLUSTERS["cluster_52"]
        assert (c52.key_size, c52.value_size) == (20, 273)

    def test_downscales_match_section_5_1(self):
        assert TWITTER_CLUSTERS["cluster_14"].size_scale == 2.0
        assert TWITTER_CLUSTERS["cluster_29"].size_scale == 3.0
        assert TWITTER_CLUSTERS["cluster_34"].size_scale == 1.0

    def test_scaled_object_size(self):
        c14 = TWITTER_CLUSTERS["cluster_14"]
        assert c14.scaled_object_size == pytest.approx((96 + 414) / 2)

    def test_average_mixed_size_is_tiny(self):
        """§5.1 targets ~246 B; the spec means land within ~25 %."""
        assert 200 < average_mixed_object_size() < 320


class TestGeneration:
    def test_deterministic(self):
        a = generate_cluster_trace("cluster_52", num_requests=1000, seed=5)
        b = generate_cluster_trace("cluster_52", num_requests=1000, seed=5)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.sizes, b.sizes)

    def test_unknown_cluster_rejected(self):
        with pytest.raises(TraceError):
            generate_cluster_trace("cluster_99", num_requests=10)

    def test_bad_args_rejected(self):
        with pytest.raises(TraceError):
            generate_cluster_trace("cluster_52", num_requests=0)
        with pytest.raises(TraceError):
            generate_cluster_trace("cluster_52", num_requests=10, get_fraction=1.5)
        with pytest.raises(TraceError):
            generate_cluster_trace("cluster_52", num_requests=10, wss_scale=0)

    def test_sizes_stable_per_key(self):
        """A key always presents the same object size."""
        t = generate_cluster_trace("cluster_34", num_requests=20_000, seed=1)
        sizes_by_key: dict[int, int] = {}
        for key, size in zip(t.keys, t.sizes):
            assert sizes_by_key.setdefault(int(key), int(size)) == int(size)

    def test_mean_size_matches_spec(self):
        spec = TWITTER_CLUSTERS["cluster_34"]
        t = generate_cluster_trace(spec, num_requests=30_000, seed=2)
        assert t.mean_object_size == pytest.approx(spec.scaled_object_size, rel=0.15)

    def test_get_fraction(self):
        t = generate_cluster_trace(
            "cluster_52", num_requests=20_000, get_fraction=0.9, seed=3
        )
        mix = t.op_mix()
        assert mix["get"] == pytest.approx(0.9, abs=0.02)

    def test_key_base_offsets_key_space(self):
        t = generate_cluster_trace(
            "cluster_52", num_requests=1000, key_base=10_000, seed=4
        )
        assert t.keys.min() >= 10_000

    def test_wss_scales_key_universe(self):
        small = generate_cluster_trace(
            "cluster_52", num_requests=100, wss_scale=1 / 4096, seed=0
        )
        large = generate_cluster_trace(
            "cluster_52", num_requests=100, wss_scale=1 / 256, seed=0
        )
        assert large.meta["cluster_num_keys"] > small.meta["cluster_num_keys"]

    def test_ops_are_gets_and_sets_only(self):
        t = generate_cluster_trace("cluster_14", num_requests=5000, seed=6)
        assert set(np.unique(t.ops)) <= {OP_GET, OP_SET}
