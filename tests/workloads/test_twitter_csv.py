"""Unit tests for the twitter/cache-trace CSV reader."""

import io

import pytest

from repro.errors import TraceError
from repro.workloads.trace import OP_DELETE, OP_GET, OP_SET
from repro.workloads.twitter_csv import load_twitter_csv

SAMPLE = """\
0,keyA,20,200,1,get,0
1,keyB,24,400,1,set,3600
2,keyA,20,200,2,get,0
3,keyB,24,400,1,gets,0
4,keyC,16,100,3,delete,0
5,keyD,16,80,3,add,100
6,keyD,16,80,3,incr,100
"""


def load_sample(**kw):
    return load_twitter_csv(io.StringIO(SAMPLE), **kw)


class TestParsing:
    def test_request_count(self):
        assert len(load_sample()) == 7

    def test_op_mapping(self):
        t = load_sample()
        assert list(t.ops) == [
            OP_GET,
            OP_SET,
            OP_GET,
            OP_GET,
            OP_DELETE,
            OP_SET,
            OP_SET,
        ]

    def test_keys_stable_per_string(self):
        t = load_sample()
        assert t.keys[0] == t.keys[2]  # keyA twice
        assert t.keys[0] != t.keys[1]

    def test_sizes_are_key_plus_value(self):
        t = load_sample()
        assert t.sizes[0] == 220
        assert t.sizes[1] == 424

    def test_size_stable_per_key(self):
        t = load_sample()
        assert t.sizes[5] == t.sizes[6]

    def test_max_requests(self):
        assert len(load_sample(max_requests=3)) == 3

    def test_size_scale(self):
        t = load_sample(size_scale=2.0)
        assert t.sizes[0] == 110

    def test_min_object_size_floor(self):
        t = load_sample(size_scale=100.0, min_object_size=32)
        assert t.sizes.min() >= 32

    def test_default_name(self):
        assert load_sample().name == "twitter-csv"


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_twitter_csv(tmp_path / "nope.csv")

    def test_short_row(self):
        with pytest.raises(TraceError):
            load_twitter_csv(io.StringIO("0,key,20,200\n"))

    def test_unknown_op(self):
        with pytest.raises(TraceError):
            load_twitter_csv(io.StringIO("0,k,20,200,1,frobnicate,0\n"))

    def test_bad_sizes(self):
        with pytest.raises(TraceError):
            load_twitter_csv(io.StringIO("0,k,xx,200,1,get,0\n"))

    def test_empty_file(self):
        with pytest.raises(TraceError):
            load_twitter_csv(io.StringIO(""))

    def test_bad_scale(self):
        with pytest.raises(TraceError):
            load_sample(size_scale=0.0)


class TestFileRoundtrip:
    def test_from_path(self, tmp_path):
        path = tmp_path / "cluster_x.csv"
        path.write_text(SAMPLE)
        t = load_twitter_csv(path, max_requests=5)
        assert t.name == "cluster_x"
        assert len(t) == 5

    def test_replayable(self, tmp_path, tiny_geometry):
        from repro.baselines.log_structured import LogStructuredCache
        from repro.harness.runner import replay

        path = tmp_path / "t.csv"
        path.write_text(SAMPLE * 50)
        trace = load_twitter_csv(path)
        engine = LogStructuredCache(tiny_geometry)
        result = replay(engine, trace)
        assert result.num_requests == 350
        assert engine.counters.hits > 0
