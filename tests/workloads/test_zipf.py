"""Unit + property tests for the Zipf key sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.workloads.zipf import ZipfGenerator, zipf_probabilities


class TestProbabilities:
    def test_sum_to_one(self):
        p = zipf_probabilities(1000, 1.2)
        assert p.sum() == pytest.approx(1.0)

    def test_monotone_decreasing_by_rank(self):
        p = zipf_probabilities(100, 0.9)
        assert np.all(np.diff(p) <= 0)

    def test_alpha_zero_is_uniform(self):
        p = zipf_probabilities(10, 0.0)
        assert np.allclose(p, 0.1)

    def test_rejects_bad_args(self):
        with pytest.raises(TraceError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(TraceError):
            zipf_probabilities(10, -1.0)


class TestSampling:
    def test_deterministic_with_seed(self):
        a = ZipfGenerator(1000, 1.2, seed=7).sample(500)
        b = ZipfGenerator(1000, 1.2, seed=7).sample(500)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        a = ZipfGenerator(1000, 1.2, seed=1).sample(500)
        b = ZipfGenerator(1000, 1.2, seed=2).sample(500)
        assert not np.array_equal(a, b)

    def test_keys_in_universe(self):
        keys = ZipfGenerator(100, 1.3, seed=0).sample(5000)
        assert keys.min() >= 0
        assert keys.max() < 100

    def test_negative_count_rejected(self):
        with pytest.raises(TraceError):
            ZipfGenerator(10, 1.0).sample(-1)

    def test_pareto_8020_at_alpha_one(self):
        """α ≈ 1 gives the classic 80/20 concentration the paper cites."""
        gen = ZipfGenerator(100_000, 1.0, seed=0, shuffle=False)
        share = gen.expected_top_share(0.2)
        assert 0.7 < share < 0.95

    def test_hotter_alpha_concentrates_more(self):
        lo = ZipfGenerator(10_000, 0.8, seed=0).expected_top_share(0.1)
        hi = ZipfGenerator(10_000, 1.3, seed=0).expected_top_share(0.1)
        assert hi > lo

    def test_empirical_matches_expected_share(self):
        gen = ZipfGenerator(5_000, 1.2, seed=3, shuffle=False)
        keys = gen.sample(200_000)
        top_k = 500  # hottest 10 % of ranks (ranks = keys when unshuffled)
        empirical = np.mean(keys < top_k)
        assert empirical == pytest.approx(gen.expected_top_share(0.1), abs=0.02)

    def test_shuffle_scatters_hot_keys(self):
        """With shuffling, the hottest key is (almost surely) not rank 0."""
        gen = ZipfGenerator(10_000, 1.2, seed=0, shuffle=True)
        keys = gen.sample(50_000)
        values, counts = np.unique(keys, return_counts=True)
        hottest = values[counts.argmax()]
        assert gen.rank_of_key(int(hottest)) == 0

    def test_rank_of_unknown_key_rejected(self):
        gen = ZipfGenerator(10, 1.0, seed=0)
        with pytest.raises(TraceError):
            gen.rank_of_key(10**9)


@settings(max_examples=20, deadline=None)
@given(
    num_keys=st.integers(2, 2000),
    alpha=st.floats(0.0, 2.0, allow_nan=False),
)
def test_sample_domain_property(num_keys, alpha):
    gen = ZipfGenerator(num_keys, alpha, seed=1)
    keys = gen.sample(256)
    assert keys.min() >= 0
    assert keys.max() < num_keys
