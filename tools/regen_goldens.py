#!/usr/bin/env python3
"""Regenerate (or verify) the golden metric-parity files.

The golden files pin every experiment cell's metrics to exact float
equality; they may only change when a metric change is *intentional*.
This tool is the one blessed way to rewrite them — and, with
``--check``, the guard that a clean tree reproduces them byte-for-byte::

    python tools/regen_goldens.py            # rewrite the golden file
    python tools/regen_goldens.py --check    # verify, write nothing

Usable from a fresh checkout without installation: it prepends the
repo's ``src/`` to ``sys.path`` and loads the parity test module (the
single source of truth for what the golden file contains) by path.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

PARITY_TEST = REPO_ROOT / "tests" / "experiments" / "test_metric_parity.py"


def _load_parity_module():
    spec = importlib.util.spec_from_file_location("metric_parity", PARITY_TEST)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def compute_cells() -> dict:
    """Recompute every golden cell exactly as the parity tests do."""
    return _load_parity_module()._compute_cells()


def golden_path() -> Path:
    return _load_parity_module().GOLDEN_PATH


def render(cells: dict) -> str:
    """Serialize cells in the golden file's canonical byte format."""
    return json.dumps(cells, indent=1) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the stored golden file matches a fresh run; write nothing",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write/check this path instead of the in-tree golden file",
    )
    args = parser.parse_args(argv)

    target = args.output if args.output is not None else golden_path()
    text = render(compute_cells())
    if args.check:
        if not target.exists():
            print(f"MISSING {target}")
            return 1
        if target.read_text() != text:
            print(f"STALE {target}: recomputed cells differ from the stored file")
            return 1
        print(f"OK {target}")
        return 0
    target.write_text(text)
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
